let log_src = Logs.Src.create "imtp.engine" ~doc:"IMTP build/measure engine"

module Log = (val Logs.src_log log_src : Logs.LOG)
module Obs = Imtp_obs.Obs
module Op = Imtp_workload.Op
module L = Imtp_lower.Lowering
module Pl = Imtp_passes.Pipeline
module Cost = Imtp_tir.Cost
module Stats = Imtp_upmem.Stats

type error =
  | Sketch_invalid of string
  | Verifier_rejected of Verifier.rejection
  | Lower_failed of string
  | Cost_failed of string

let error_to_string = function
  | Sketch_invalid m -> "sketch: " ^ m
  | Verifier_rejected r -> "verifier: " ^ r.Verifier.reason
  | Lower_failed m -> "lower: " ^ m
  | Cost_failed m -> "cost: " ^ m

type artifact = {
  key : string;
  sched : Imtp_schedule.Sched.t;
  lowered : Imtp_tir.Program.t;
  program : Imtp_tir.Program.t;
  stats : Imtp_upmem.Stats.t;
}

type measurement = { artifact : artifact; latency_s : float; from_cache : bool }

type prepared = {
  pkey : string;
  psched : Imtp_schedule.Sched.t;
  plowered : Imtp_tir.Program.t;
  pprogram : Imtp_tir.Program.t;
}

type counters = {
  lookups : int;
  hits : int;
  misses : int;
  evictions : int;
  built : int;
  failed : int;
  costed : int;
  sketch_s : float;
  lower_s : float;
  passes_s : float;
  verify_s : float;
  cost_s : float;
}

type t = {
  cfg : Imtp_upmem.Config.t;
  max_entries : int;
  lock : Mutex.t;
      (* Guards [artifacts], [prepareds], [lowerings] and [c].  Stage
         work (sketch, lower, passes, verify, cost) always runs outside
         the lock, so parallel builds only contend on table lookups and
         counter bumps. *)
  artifacts : (string, (artifact, error) result) Hashtbl.t;
  prepareds : (string, (prepared, error) result) Hashtbl.t;
  lowerings : (string, (Imtp_tir.Program.t, error) result) Hashtbl.t;
  mutable c : counters;
}

let zero_counters =
  {
    lookups = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    built = 0;
    failed = 0;
    costed = 0;
    sketch_s = 0.;
    lower_s = 0.;
    passes_s = 0.;
    verify_s = 0.;
    cost_s = 0.;
  }

let create ?(max_entries = 4096) cfg =
  {
    cfg;
    max_entries;
    lock = Mutex.create ();
    artifacts = Hashtbl.create 256;
    prepareds = Hashtbl.create 64;
    lowerings = Hashtbl.create 64;
    c = zero_counters;
  }

let config t = t.cfg
let locked t f = Mutex.protect t.lock f

(* A consistent snapshot: the counters record is immutable, so taking
   the lock for the read means no torn view even while worker domains
   are updating it. *)
let counters t = locked t (fun () -> t.c)

let hit_rate c =
  if c.lookups = 0 then 0. else float_of_int c.hits /. float_of_int c.lookups

let log_summary t =
  let c = counters t in
  Log.info (fun m ->
      m
        "cache: %d/%d hits (%.1f%%), %d built, %d failed, %d evictions; \
         stage times: sketch %.1f ms, lower %.1f ms, passes %.1f ms, verify \
         %.1f ms, cost %.1f ms"
        c.hits c.lookups
        (100. *. hit_rate c)
        c.built c.failed c.evictions (c.sketch_s *. 1e3) (c.lower_s *. 1e3)
        (c.passes_s *. 1e3) (c.verify_s *. 1e3) (c.cost_s *. 1e3))

let noise_amplitude = 0.02

(* ------------------------------------------------------------------ *)
(* Canonical structural hashing.                                       *)
(* ------------------------------------------------------------------ *)

let rec elem_key = function
  | Op.Ref t -> "R" ^ t
  | Op.Const v -> "K" ^ Imtp_tensor.Value.to_string v
  | Op.Acc -> "@"
  | Op.Bin (b, x, y) ->
      let o =
        match b with
        | Op.Add -> "+"
        | Op.Sub -> "-"
        | Op.Mul -> "*"
        | Op.Div -> "/"
        | Op.Min -> "<"
        | Op.Max -> ">"
      in
      Printf.sprintf "(%s%s%s)" (elem_key x) o (elem_key y)

let axis_key (a : Op.axis) =
  Printf.sprintf "%s:%d:%c" a.Op.aname a.Op.extent
    (match a.Op.kind with Op.Spatial -> 's' | Op.Reduction -> 'r')

let tensor_key (name, axes) = name ^ "[" ^ String.concat "," axes ^ "]"

let op_key (op : Op.t) =
  String.concat ";"
    [
      op.Op.opname;
      Imtp_tensor.Dtype.to_string op.Op.dtype;
      String.concat "," (List.map axis_key op.Op.axes);
      String.concat "," (List.map tensor_key op.Op.inputs);
      tensor_key op.Op.output;
      elem_key op.Op.body;
    ]
  (* Appended only when present so pre-epilogue keys stay unchanged
     (golden search traces depend on them). *)
  ^ match op.Op.epilogue with None -> "" | Some e -> ";epi" ^ elem_key e

let params_key (p : Sketch.params) =
  Printf.sprintf "sd%d;rd%d;t%d;c%d;rows%d;u%b;ht%d" p.Sketch.spatial_dpus
    p.Sketch.reduction_dpus p.Sketch.tasklets p.Sketch.cache_elems
    p.Sketch.rows_per_tasklet p.Sketch.unroll_inner p.Sketch.host_threads

let options_key (o : L.options) =
  Printf.sprintf "bulk%b;par%b;hrt%d;af%b;skip%s" o.L.bulk_transfer
    o.L.parallel_transfer o.L.host_reduce_threads o.L.affine_guards
    (String.concat "," (List.sort String.compare o.L.skip_input_transfer))
  (* conditional so pre-residency keys stay byte-identical. *)
  ^ if o.L.skip_output_transfer then ";skipout" else ""

let digest_parts parts = Digest.to_hex (Digest.string (String.concat "|" parts))

let candidate_options ?(skip_inputs = []) ?(passes = Pl.all_on) params =
  {
    (Sketch.lower_options params) with
    L.skip_input_transfer = skip_inputs;
    L.affine_guards = passes.Pl.affine;
  }

let fingerprint ?(passes = Pl.all_on) ?skip_inputs ?(verify = true) op params =
  digest_parts
    [
      op_key op;
      params_key params;
      Pl.config_name passes;
      options_key (candidate_options ?skip_inputs ~passes params);
      (if verify then "v" else "nv");
    ]

(* ------------------------------------------------------------------ *)
(* The staged pipeline.  Each stage exists once; stage timings are     *)
(* accumulated into the engine's counters when one is at hand.         *)
(* ------------------------------------------------------------------ *)

(* Each stage is timed twice on purpose: CPU time (Sys.time) feeds the
   engine's counters, exactly as before, while the Obs span records
   wall clock and the Obs histogram aggregates the per-stage latency
   distribution under the stable names `engine.stage.<stage>_s`. *)
let timed t ~stage add f =
  Obs.span ~name:("engine." ^ stage) (fun () ->
      let t0 = Sys.time () in
      let r = f () in
      let dt = Sys.time () -. t0 in
      (match t with
      | Some t -> locked t (fun () -> t.c <- add t.c dt)
      | None -> ());
      Obs.observe ("engine.stage." ^ stage ^ "_s") dt;
      r)

let add_sketch c dt = { c with sketch_s = c.sketch_s +. dt }
let add_lower c dt = { c with lower_s = c.lower_s +. dt }
let add_passes c dt = { c with passes_s = c.passes_s +. dt }
let add_verify c dt = { c with verify_s = c.verify_s +. dt }
(* Every run of the cost stage is one simulator execution; [costed] is
   the ledger the measurement-gated search is judged against. *)
let add_cost c dt = { c with cost_s = c.cost_s +. dt; costed = c.costed + 1 }

let stage_sketch ?t op params =
  timed t ~stage:"sketch" add_sketch (fun () ->
      match Sketch.instantiate op params with
      | sched -> Ok sched
      | exception Invalid_argument m -> Error (Sketch_invalid m))

let stage_lower ?t ~options sched =
  timed t ~stage:"lower" add_lower (fun () ->
      match L.lower ~options sched with
      | prog -> Ok prog
      | exception L.Lower_error m -> Error (Lower_failed m))

let stage_passes ?t ~passes cfg prog =
  timed t ~stage:"passes" add_passes (fun () -> Pl.run ~config:passes cfg prog)

let stage_verify_sched ?t cfg sched =
  timed t ~stage:"verify" add_verify (fun () ->
      match Verifier.check_sched cfg sched with
      | Ok () -> Ok ()
      | Error r -> Error (Verifier_rejected r))

let stage_verify_program ?t cfg prog =
  timed t ~stage:"verify" add_verify (fun () ->
      match Verifier.check cfg prog with
      | Ok () -> Ok ()
      | Error r -> Error (Verifier_rejected r))

(* Optional device-measurement latency emulation: on real PIM hardware
   a measurement is a round-trip to the device and the tuner mostly
   waits, so IMTP_SIM_LATENCY_US > 0 adds that wall-clock stall to
   every simulator execution.  The stall is pure waiting — it never
   changes stats or the CPU-time counters — and it is what the
   island-scaling benchmark uses to show measurement overlap across
   concurrent searches.  Read per call so a bench can vary it between
   phases of one process. *)
let sim_latency_s () =
  match Sys.getenv_opt "IMTP_SIM_LATENCY_US" with
  | None -> 0.
  | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some us when us > 0. -> us *. 1e-6
      | Some _ | None -> 0.)

let stage_cost ?t cfg prog =
  timed t ~stage:"cost" add_cost (fun () ->
      match Cost.measure cfg prog with
      | stats ->
          let stall = sim_latency_s () in
          if stall > 0. then Unix.sleepf stall;
          Ok stats
      | exception Cost.Error m -> Error (Cost_failed m))

let compile_sched ?(options = L.default_options) ?(passes = Pl.all_on) cfg sched
    =
  match stage_lower ~options sched with
  | Error _ as e -> e
  | Ok prog -> Ok (stage_passes ~passes cfg prog)

let estimate cfg prog = stage_cost cfg prog

let optimize t ?(passes = Pl.all_on) prog =
  stage_passes ~t ~passes t.cfg prog

(* ------------------------------------------------------------------ *)
(* The memo table.                                                     *)
(* ------------------------------------------------------------------ *)

(* [count_built:false] caches a result whose construction only finished
   an already-counted build (the cost stage of a prepared candidate)
   without double-counting it in [built]. *)
let remember ?(count_built = true) t table key result =
  locked t (fun () ->
      if
        Hashtbl.length t.artifacts + Hashtbl.length t.prepareds
        + Hashtbl.length t.lowerings
        >= t.max_entries
      then begin
        Hashtbl.reset t.artifacts;
        Hashtbl.reset t.prepareds;
        Hashtbl.reset t.lowerings;
        t.c <- { t.c with evictions = t.c.evictions + 1 };
        Obs.incr "engine.cache.evictions"
      end;
      Hashtbl.replace table key result;
      (match result with
      | Ok _ ->
          if count_built then begin
            t.c <- { t.c with built = t.c.built + 1 };
            Obs.incr "engine.built"
          end
      | Error _ ->
          t.c <- { t.c with failed = t.c.failed + 1 };
          Obs.incr "engine.failed");
      result)

let lookup t table key =
  locked t (fun () ->
      t.c <- { t.c with lookups = t.c.lookups + 1 };
      Obs.incr "engine.cache.lookups";
      match Hashtbl.find_opt table key with
      | Some r ->
          t.c <- { t.c with hits = t.c.hits + 1 };
          Obs.incr "engine.cache.hits";
          Some r
      | None ->
          t.c <- { t.c with misses = t.c.misses + 1 };
          Obs.incr "engine.cache.misses";
          None)

let ( let* ) = Result.bind

(* Everything but the cost stage: the cheap prefix of the pipeline that
   the learned cost model's feature extraction needs. *)
let prepare_uncached t ~passes ~options ~verify ~key op params =
  let* sched = stage_sketch ~t op params in
  let* () = if verify then stage_verify_sched ~t t.cfg sched else Ok () in
  let* lowered = stage_lower ~t ~options sched in
  let program = stage_passes ~t ~passes t.cfg lowered in
  let* () = if verify then stage_verify_program ~t t.cfg program else Ok () in
  Ok { pkey = key; psched = sched; plowered = lowered; pprogram = program }

(* The simulator execution itself. *)
let cost_prepared t (p : prepared) =
  let* stats = stage_cost ~t t.cfg p.pprogram in
  Obs.incr ~by:stats.Stats.bytes_h2d "engine.bytes_h2d";
  Obs.incr ~by:stats.Stats.bytes_d2h "engine.bytes_d2h";
  Ok
    {
      key = p.pkey;
      sched = p.psched;
      lowered = p.plowered;
      program = p.pprogram;
      stats;
    }

let build_uncached t ~passes ~options ~verify ~key op params =
  let* prepared = prepare_uncached t ~passes ~options ~verify ~key op params in
  cost_prepared t prepared

let prepared_of_artifact (a : artifact) =
  { pkey = a.key; psched = a.sched; plowered = a.lowered; pprogram = a.program }

let build_flagged t ?(passes = Pl.all_on) ?skip_inputs ?(verify = true) op
    params =
  Obs.span ~name:"engine.build"
    ~attrs:[ ("op", Obs.Str op.Op.opname) ]
    (fun () ->
      let options = candidate_options ?skip_inputs ~passes params in
      let key = fingerprint ~passes ?skip_inputs ~verify op params in
      let result, hit =
        match lookup t t.artifacts key with
        | Some r -> (r, true)
        | None ->
            (remember t t.artifacts key
               (build_uncached t ~passes ~options ~verify ~key op params),
             false)
      in
      Obs.add_attr "hit" (Obs.Bool hit);
      Obs.add_attr "ok" (Obs.Bool (Result.is_ok result));
      (result, hit))

let build t ?passes ?skip_inputs ?verify op params =
  fst (build_flagged t ?passes ?skip_inputs ?verify op params)

let find t ?passes ?skip_inputs ?verify op params =
  Hashtbl.find_opt t.artifacts (fingerprint ?passes ?skip_inputs ?verify op params)

let noisy ?rng base =
  match rng with
  | None -> base
  | Some r -> base *. (1. +. (noise_amplitude *. ((2. *. Rng.float r 1.) -. 1.)))

let measure t ?rng ?passes ?skip_inputs ?verify op params =
  match build_flagged t ?passes ?skip_inputs ?verify op params with
  | Error e, _ -> Error e
  | Ok artifact, from_cache ->
      let latency_s = noisy ?rng (Stats.total_s artifact.stats) in
      Ok { artifact; latency_s; from_cache }

(* --- the prepared (cost-free) pipeline prefix ----------------------- *)

(* One locked probe across both tables: a full artifact supersedes a
   prepared entry, so either serves a prepare lookup as a hit. *)
let lookup_prepared t key =
  locked t (fun () ->
      t.c <- { t.c with lookups = t.c.lookups + 1 };
      Obs.incr "engine.cache.lookups";
      let found =
        match Hashtbl.find_opt t.artifacts key with
        | Some r -> Some (Result.map prepared_of_artifact r)
        | None -> Hashtbl.find_opt t.prepareds key
      in
      (match found with
      | Some _ ->
          t.c <- { t.c with hits = t.c.hits + 1 };
          Obs.incr "engine.cache.hits"
      | None ->
          t.c <- { t.c with misses = t.c.misses + 1 };
          Obs.incr "engine.cache.misses");
      found)

let prepare t ?(passes = Pl.all_on) ?skip_inputs ?(verify = true) op params =
  Obs.span ~name:"engine.prepare"
    ~attrs:[ ("op", Obs.Str op.Op.opname) ]
    (fun () ->
      let options = candidate_options ?skip_inputs ~passes params in
      let key = fingerprint ~passes ?skip_inputs ~verify op params in
      let result, hit =
        match lookup_prepared t key with
        | Some r -> (r, true)
        | None ->
            (remember t t.prepareds key
               (prepare_uncached t ~passes ~options ~verify ~key op params),
             false)
      in
      Obs.add_attr "hit" (Obs.Bool hit);
      Obs.add_attr "ok" (Obs.Bool (Result.is_ok result));
      result)

let simulate t ?rng (p : prepared) =
  Obs.span ~name:"engine.simulate" (fun () ->
      let result, from_cache =
        match lookup t t.artifacts p.pkey with
        | Some r -> (r, true)
        | None ->
            ( remember ~count_built:false t t.artifacts p.pkey
                (cost_prepared t p),
              false )
      in
      Obs.add_attr "hit" (Obs.Bool from_cache);
      match result with
      | Error e -> Error e
      | Ok artifact ->
          let latency_s = noisy ?rng (Stats.total_s artifact.stats) in
          Ok { artifact; latency_s; from_cache })

(* Functional execution of a built program.  All hot-path executions
   (CLI runs, graph nodes, the core [Imtp.execute]) funnel through
   here so the trace records which executor backend served them. *)
let execute prog ~inputs =
  Obs.span ~name:"engine.execute"
    ~attrs:[ ("executor", Obs.Str (Imtp_tir.Exec.backend_name ())) ]
    (fun () -> Imtp_tir.Exec.run_counted prog ~inputs)

(* How each batch slot will be satisfied, decided up front in list
   order so the hit/miss ledger and [from_cache] flags are the same no
   matter how many domains then race on the builds:
   - [Cached r]: the key was already in the table when the batch
     started; its result is captured at classification time so a
     mid-batch eviction can't change the answer.
   - [Build]: first occurrence of an uncached key; this slot does the
     work.
   - [Dup i]: later occurrence of slot [i]'s key; reported as a cache
     hit (as the sequential walk would) and filled from slot [i]'s
     result rather than the table, again to be eviction-proof. *)
type 'a plan = Cached of 'a | Build | Dup of int

let batch t ?jobs ?rng ?passes ?skip_inputs ?verify op candidates =
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  let passes = Option.value passes ~default:Pl.all_on in
  let verify = Option.value verify ~default:true in
  let n = List.length candidates in
  (* One draw per batch: the caller's rng advances identically whatever
     [jobs] is, and candidate [i]'s noise comes from its own stream. *)
  let base = Option.map Rng.bits rng in
  let c0 = counters t in
  let results =
    Obs.span ~name:"engine.batch"
      ~attrs:
        [
          ("op", Obs.Str op.Op.opname);
          ("size", Obs.Int n);
          ("jobs", Obs.Int jobs);
        ]
      (fun () ->
        let parent = Obs.current_span_id () in
        let cands = Array.of_list candidates in
        let keys =
          Array.map (fun p -> fingerprint ~passes ?skip_inputs ~verify op p) cands
        in
        let plan =
          locked t (fun () ->
              let first = Hashtbl.create (max 16 n) in
              Array.mapi
                (fun i key ->
                  t.c <- { t.c with lookups = t.c.lookups + 1 };
                  match Hashtbl.find_opt t.artifacts key with
                  | Some r ->
                      t.c <- { t.c with hits = t.c.hits + 1 };
                      Cached r
                  | None -> (
                      match Hashtbl.find_opt first key with
                      | Some i0 ->
                          t.c <- { t.c with hits = t.c.hits + 1 };
                          Dup i0
                      | None ->
                          Hashtbl.add first key i;
                          t.c <- { t.c with misses = t.c.misses + 1 };
                          Build))
                keys)
        in
        let hits =
          Array.fold_left
            (fun a -> function Cached _ | Dup _ -> a + 1 | Build -> a)
            0 plan
        in
        let builds = n - hits in
        if n > 0 then Obs.incr ~by:n "engine.cache.lookups";
        if hits > 0 then Obs.incr ~by:hits "engine.cache.hits";
        if builds > 0 then Obs.incr ~by:builds "engine.cache.misses";
        let built : (artifact, error) result option array = Array.make n None in
        let run i =
          match plan.(i) with
          | Cached _ | Dup _ -> ()
          | Build ->
              Obs.with_ambient_parent parent (fun () ->
                  Obs.span ~name:"engine.build"
                    ~attrs:[ ("op", Obs.Str op.Op.opname) ]
                    (fun () ->
                      let p = cands.(i) in
                      let options = candidate_options ?skip_inputs ~passes p in
                      let r =
                        build_uncached t ~passes ~options ~verify ~key:keys.(i)
                          op p
                      in
                      let r = remember t t.artifacts keys.(i) r in
                      Obs.add_attr "hit" (Obs.Bool false);
                      Obs.add_attr "ok" (Obs.Bool (Result.is_ok r));
                      built.(i) <- Some r))
        in
        let (_ : unit array), util = Pool.map_stats ~jobs run n in
        let result_of i =
          match plan.(i) with
          | Cached r -> (r, true)
          | Build -> (Option.get built.(i), false)
          | Dup i0 -> (Option.get built.(i0), true)
        in
        let results =
          List.mapi
            (fun i p ->
              let m =
                match result_of i with
                | Error e, _ -> Error e
                | Ok artifact, from_cache ->
                    let base_l = Stats.total_s artifact.stats in
                    let latency_s =
                      match base with
                      | None -> base_l
                      | Some b ->
                          let r = Rng.stream ~base:b ~index:i in
                          base_l
                          *. (1.
                             +. noise_amplitude *. ((2. *. Rng.float r 1.) -. 1.)
                             )
                    in
                    Ok { artifact; latency_s; from_cache }
              in
              (p, m))
            candidates
        in
        Obs.add_attr "hits" (Obs.Int hits);
        Obs.add_attr "misses" (Obs.Int builds);
        Obs.add_attr "domains_used" (Obs.Int (Array.length util));
        Obs.add_attr "utilization"
          (Obs.Str
             (String.concat ","
                (Array.to_list util
                |> List.map (fun (tasks, busy) ->
                       Printf.sprintf "%d:%.4fs" tasks busy))));
        results)
  in
  let c1 = counters t in
  Log.debug (fun m ->
      m
        "batch of %d: %d hits, %d misses (run total %d/%d, %.1f%%); stage \
         times +sketch %.2f ms +lower %.2f ms +passes %.2f ms +verify %.2f \
         ms +cost %.2f ms"
        (List.length candidates)
        (c1.hits - c0.hits) (c1.misses - c0.misses) c1.hits c1.lookups
        (100. *. hit_rate c1)
        ((c1.sketch_s -. c0.sketch_s) *. 1e3)
        ((c1.lower_s -. c0.lower_s) *. 1e3)
        ((c1.passes_s -. c0.passes_s) *. 1e3)
        ((c1.verify_s -. c0.verify_s) *. 1e3)
        ((c1.cost_s -. c0.cost_s) *. 1e3));
  results

(* Batched prepare: the same ahead-of-time hit/build/dup classification
   as [batch] (so hit/miss ledgers and results are independent of the
   job count), over the combined artifact+prepared tables, with no rng
   involvement at all — ranking a population must not disturb the
   caller's noise stream. *)
let prepare_batch t ?jobs ?passes ?skip_inputs ?verify op candidates =
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  let passes = Option.value passes ~default:Pl.all_on in
  let verify = Option.value verify ~default:true in
  let n = List.length candidates in
  Obs.span ~name:"engine.prepare_batch"
    ~attrs:
      [
        ("op", Obs.Str op.Op.opname);
        ("size", Obs.Int n);
        ("jobs", Obs.Int jobs);
      ]
    (fun () ->
      let parent = Obs.current_span_id () in
      let cands = Array.of_list candidates in
      let keys =
        Array.map (fun p -> fingerprint ~passes ?skip_inputs ~verify op p) cands
      in
      let plan =
        locked t (fun () ->
            let first = Hashtbl.create (max 16 n) in
            Array.mapi
              (fun i key ->
                t.c <- { t.c with lookups = t.c.lookups + 1 };
                let cached =
                  match Hashtbl.find_opt t.artifacts key with
                  | Some r -> Some (Result.map prepared_of_artifact r)
                  | None -> Hashtbl.find_opt t.prepareds key
                in
                match cached with
                | Some r ->
                    t.c <- { t.c with hits = t.c.hits + 1 };
                    Cached r
                | None -> (
                    match Hashtbl.find_opt first key with
                    | Some i0 ->
                        t.c <- { t.c with hits = t.c.hits + 1 };
                        Dup i0
                    | None ->
                        Hashtbl.add first key i;
                        t.c <- { t.c with misses = t.c.misses + 1 };
                        Build))
              keys)
      in
      let hits =
        Array.fold_left
          (fun a -> function Cached _ | Dup _ -> a + 1 | Build -> a)
          0 plan
      in
      let builds = n - hits in
      if n > 0 then Obs.incr ~by:n "engine.cache.lookups";
      if hits > 0 then Obs.incr ~by:hits "engine.cache.hits";
      if builds > 0 then Obs.incr ~by:builds "engine.cache.misses";
      let built : (prepared, error) result option array = Array.make n None in
      let run i =
        match plan.(i) with
        | Cached _ | Dup _ -> ()
        | Build ->
            Obs.with_ambient_parent parent (fun () ->
                Obs.span ~name:"engine.prepare"
                  ~attrs:[ ("op", Obs.Str op.Op.opname) ]
                  (fun () ->
                    let p = cands.(i) in
                    let options = candidate_options ?skip_inputs ~passes p in
                    let r =
                      prepare_uncached t ~passes ~options ~verify ~key:keys.(i)
                        op p
                    in
                    let r = remember t t.prepareds keys.(i) r in
                    Obs.add_attr "hit" (Obs.Bool false);
                    Obs.add_attr "ok" (Obs.Bool (Result.is_ok r));
                    built.(i) <- Some r))
      in
      let (_ : unit array), _util = Pool.map_stats ~jobs run n in
      Obs.add_attr "hits" (Obs.Int hits);
      Obs.add_attr "misses" (Obs.Int builds);
      List.mapi
        (fun i p ->
          let r =
            match plan.(i) with
            | Cached r -> r
            | Build -> Option.get built.(i)
            | Dup i0 -> Option.get built.(i0)
          in
          (p, r))
        candidates)

let lower_keyed t ~key thunk =
  match lookup t t.lowerings key with
  | Some r -> r
  | None ->
      remember t t.lowerings key (timed (Some t) ~stage:"lower" add_lower thunk)
