module Dtype = Imtp_tensor.Dtype
module Value = Imtp_tensor.Value
module Shape = Imtp_tensor.Shape
module Tensor = Imtp_tensor.Tensor
module Reference = Imtp_tensor.Reference
module Config = Imtp_upmem.Config
module Timing = Imtp_upmem.Timing
module Dpu_model = Imtp_upmem.Dpu_model
module Transfer = Imtp_upmem.Transfer
module Host_model = Imtp_upmem.Host_model
module Stats = Imtp_upmem.Stats
module Var = Imtp_tir.Var
module Expr = Imtp_tir.Expr
module Stmt = Imtp_tir.Stmt
module Tir_buffer = Imtp_tir.Buffer
module Program = Imtp_tir.Program
module Printer = Imtp_tir.Printer
module Codegen_c = Imtp_tir.Codegen_c
module Analysis = Imtp_tir.Analysis
module Simplify = Imtp_tir.Simplify
module Eval = Imtp_tir.Eval
module Exec = Imtp_tir.Exec
module Cost = Imtp_tir.Cost
module Op = Imtp_workload.Op
module Ops = Imtp_workload.Ops
module Nets = Imtp_workload.Nets
module Gptj = Imtp_workload.Gptj
module Sched = Imtp_schedule.Sched
module Lowering = Imtp_lower.Lowering
module Passes = Imtp_passes.Pipeline
module Dma_elim = Imtp_passes.Dma_elim
module Loop_tighten = Imtp_passes.Loop_tighten
module Branch_hoist = Imtp_passes.Branch_hoist
module Pass_metrics = Imtp_passes.Metrics
module Obs = Imtp_obs.Obs
module Engine = Imtp_engine.Engine
module Pool = Imtp_engine.Pool
module Rng = Imtp_autotune.Rng
module Sketch = Imtp_autotune.Sketch
module Verifier = Imtp_autotune.Verifier
module Measure = Imtp_autotune.Measure
module Cost_model = Imtp_autotune.Cost_model
module Cost_learn = Imtp_autotune.Cost_learn
module Search = Imtp_autotune.Search
module Tuner = Imtp_autotune.Tuner
module Tuning_log = Imtp_autotune.Tuning_log
module Search_checkpoint = Imtp_autotune.Checkpoint
module Protocol = Imtp_serve.Protocol
module Serve = Imtp_serve.Serve
module Serve_client = Imtp_serve.Client
module Fuzz = Imtp_fuzz.Driver
module Fuzz_oracle = Imtp_fuzz.Oracle
module Fuzz_shrink = Imtp_fuzz.Shrink
module Gen_workload = Imtp_fuzz.Gen_workload
module Gen_sched = Imtp_fuzz.Gen_sched
module Fuzz_graph = Imtp_fuzz.Graph_fuzz
module Gen_passes = Imtp_fuzz.Gen_passes
module Graph = Imtp_graph.Graph
module Hbm_pim = Imtp_hbmpim.Hbm_pim
module Prim = Imtp_baselines.Prim
module Simplepim = Imtp_baselines.Simplepim

let default_config = Config.default

let autotune ?(config = default_config) ?trials ?seed ?skip_inputs op =
  Tuner.tune ?trials ?seed ?skip_inputs config op

let compile ?(config = default_config) ?options ?passes sched =
  match Engine.compile_sched ?options ?passes config sched with
  | Ok prog -> prog
  | Error (Engine.Lower_failed m) -> raise (Lowering.Lower_error m)
  | Error e -> invalid_arg (Engine.error_to_string e)

let execute ?inputs program op =
  let inputs =
    match inputs with Some i -> i | None -> Ops.random_inputs op
  in
  fst (Engine.execute program ~inputs)

let estimate ?(config = default_config) program =
  match Engine.estimate config program with
  | Ok stats -> stats
  | Error (Engine.Cost_failed m) -> raise (Cost.Error m)
  | Error e -> invalid_arg (Engine.error_to_string e)
