(** IMTP — search-based code generation for in-memory tensor programs.

    An OCaml reproduction of the IMTP/ATiM compiler (ISCA'25): an
    autotuning tensor compiler targeting the UPMEM processing-in-DRAM
    architecture, built on a behavioural+timing UPMEM simulator.

    The aliases below re-export the full API surface; the functions at
    the bottom are the one-call workflow most users need:

    {[
      let op = Imtp.Ops.va 1_000_000 in
      match Imtp.autotune op with
      | Error m -> prerr_endline m
      | Ok r ->
          Format.printf "tuned: %s@." (Imtp.Tuner.describe r);
          let outputs = Imtp.execute r.Imtp.Tuner.program op in
          ...
    ]} *)

(* Substrates *)
module Dtype = Imtp_tensor.Dtype
module Value = Imtp_tensor.Value
module Shape = Imtp_tensor.Shape
module Tensor = Imtp_tensor.Tensor
module Reference = Imtp_tensor.Reference

(* UPMEM machine model *)
module Config = Imtp_upmem.Config
module Timing = Imtp_upmem.Timing
module Dpu_model = Imtp_upmem.Dpu_model
module Transfer = Imtp_upmem.Transfer
module Host_model = Imtp_upmem.Host_model
module Stats = Imtp_upmem.Stats

(* Tensor IR *)
module Var = Imtp_tir.Var
module Expr = Imtp_tir.Expr
module Stmt = Imtp_tir.Stmt
module Tir_buffer = Imtp_tir.Buffer
module Program = Imtp_tir.Program
module Printer = Imtp_tir.Printer
module Codegen_c = Imtp_tir.Codegen_c
module Analysis = Imtp_tir.Analysis
module Simplify = Imtp_tir.Simplify
module Eval = Imtp_tir.Eval
module Exec = Imtp_tir.Exec
module Cost = Imtp_tir.Cost

(* Workloads, schedules, lowering, passes *)
module Op = Imtp_workload.Op
module Ops = Imtp_workload.Ops
module Nets = Imtp_workload.Nets
module Gptj = Imtp_workload.Gptj
module Sched = Imtp_schedule.Sched
module Lowering = Imtp_lower.Lowering
module Passes = Imtp_passes.Pipeline
module Dma_elim = Imtp_passes.Dma_elim
module Loop_tighten = Imtp_passes.Loop_tighten
module Branch_hoist = Imtp_passes.Branch_hoist
module Pass_metrics = Imtp_passes.Metrics

(* Observability: tracing spans + metrics registry *)
module Obs = Imtp_obs.Obs

(* Build/measure engine and autotuner *)
module Engine = Imtp_engine.Engine
module Pool = Imtp_engine.Pool
module Rng = Imtp_autotune.Rng
module Sketch = Imtp_autotune.Sketch
module Verifier = Imtp_autotune.Verifier
module Measure = Imtp_autotune.Measure
module Cost_model = Imtp_autotune.Cost_model
module Cost_learn = Imtp_autotune.Cost_learn
module Search = Imtp_autotune.Search
module Tuner = Imtp_autotune.Tuner
module Tuning_log = Imtp_autotune.Tuning_log
module Search_checkpoint = Imtp_autotune.Checkpoint

(* Serving: the tuning daemon, its wire protocol, and the client *)
module Protocol = Imtp_serve.Protocol
module Serve = Imtp_serve.Serve
module Serve_client = Imtp_serve.Client

(* Differential fuzzing *)
module Fuzz = Imtp_fuzz.Driver
module Fuzz_oracle = Imtp_fuzz.Oracle
module Fuzz_shrink = Imtp_fuzz.Shrink
module Gen_workload = Imtp_fuzz.Gen_workload
module Gen_sched = Imtp_fuzz.Gen_sched
module Fuzz_graph = Imtp_fuzz.Graph_fuzz
module Gen_passes = Imtp_fuzz.Gen_passes

(* Baselines *)
module Graph = Imtp_graph.Graph
module Hbm_pim = Imtp_hbmpim.Hbm_pim
module Prim = Imtp_baselines.Prim
module Simplepim = Imtp_baselines.Simplepim

val default_config : Config.t
(** The paper's 2,048-DPU UPMEM server. *)

val autotune :
  ?config:Config.t ->
  ?trials:int ->
  ?seed:int ->
  ?skip_inputs:string list ->
  Op.t ->
  (Tuner.result, string) Result.t
(** Search-based compilation: explore the joint host+kernel space and
    return the best program found (default 128 trials). *)

val compile :
  ?config:Config.t ->
  ?options:Lowering.options ->
  ?passes:Passes.config ->
  Sched.t ->
  Program.t
(** Manual-schedule compilation: lower and apply the PIM-aware passes.
    @raise Lowering.Lower_error on unsupported schedules. *)

val execute :
  ?inputs:(string * Tensor.t) list ->
  Program.t ->
  Op.t ->
  (string * Tensor.t) list
(** Run a compiled program on the functional executor — the closure
    compiler {!Exec} by default, the tree-walking interpreter under
    [IMTP_EXEC=interp]; both are bit-identical by contract.  Missing
    inputs are generated deterministically ({!Ops.random_inputs}).
    Returns all host buffers, including the output. *)

val estimate : ?config:Config.t -> Program.t -> Stats.t
(** Simulated latency breakdown of one execution. *)
