module T = Imtp_tensor

exception Error of string

let err fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

type counters = {
  mutable kernel_stores : int;
  mutable kernel_loads : int;
  mutable dma_elems : int;
  mutable dma_ops : int;
  mutable xfer_elems_h2d : int;
  mutable xfer_elems_d2h : int;
}

let fresh_counters () =
  {
    kernel_stores = 0;
    kernel_loads = 0;
    dma_elems = 0;
    dma_ops = 0;
    xfer_elems_h2d = 0;
    xfer_elems_d2h = 0;
  }

type side = Host_side | Kernel_side

type ctx = {
  prog : Program.t;
  host_mem : (string, T.Tensor.t) Hashtbl.t;
  mram_mem : (string, T.Tensor.t array) Hashtbl.t;  (* indexed by DPU id *)
  mutable wram_mem : (string * T.Tensor.t) list;  (* innermost-first scoped *)
  mutable dpu : int;  (* current DPU during kernel eval *)
  mutable side : side;
  counters : counters;
}

let flat_tensor (b : Buffer.t) =
  T.Tensor.create b.dtype (T.Shape.create [ b.elems ])

(* --- memory access ------------------------------------------------- *)

let wram_lookup ctx name = List.assoc_opt name ctx.wram_mem

let read_buf ctx name off =
  match wram_lookup ctx name with
  | Some t ->
      if off < 0 || off >= T.Tensor.size t then
        err "wram read out of bounds: %s[%d]" name off
      else T.Tensor.get_flat t off
  | None -> (
      match Hashtbl.find_opt ctx.mram_mem name with
      | Some per_dpu ->
          if ctx.side = Host_side then
            err "host code reads MRAM buffer %s directly (use Xfer)" name;
          let t = per_dpu.(ctx.dpu) in
          if off < 0 || off >= T.Tensor.size t then
            err "mram read out of bounds: %s[%d] (dpu %d)" name off ctx.dpu
          else T.Tensor.get_flat t off
      | None -> (
          match Hashtbl.find_opt ctx.host_mem name with
          | Some t ->
              if ctx.side = Kernel_side then
                err "kernel reads host buffer %s" name;
              if off < 0 || off >= T.Tensor.size t then
                err "host read out of bounds: %s[%d]" name off
              else T.Tensor.get_flat t off
          | None -> err "read from unknown buffer %s" name))

let write_buf ctx name off v =
  match wram_lookup ctx name with
  | Some t ->
      if off < 0 || off >= T.Tensor.size t then
        err "wram write out of bounds: %s[%d]" name off
      else T.Tensor.set_flat t off v
  | None -> (
      match Hashtbl.find_opt ctx.mram_mem name with
      | Some per_dpu ->
          if ctx.side = Host_side then
            err "host code writes MRAM buffer %s directly (use Xfer)" name;
          let t = per_dpu.(ctx.dpu) in
          if off < 0 || off >= T.Tensor.size t then
            err "mram write out of bounds: %s[%d] (dpu %d)" name off ctx.dpu
          else T.Tensor.set_flat t off v
      | None -> (
          match Hashtbl.find_opt ctx.host_mem name with
          | Some t ->
              if ctx.side = Kernel_side then
                err "kernel writes host buffer %s" name;
              if off < 0 || off >= T.Tensor.size t then
                err "host write out of bounds: %s[%d]" name off
              else T.Tensor.set_flat t off v
          | None -> err "write to unknown buffer %s" name))

(* --- expressions ---------------------------------------------------- *)

let rec eval_expr ctx env (e : Expr.t) : T.Value.t =
  match e with
  | Int_const n -> T.Value.Int n
  | Float_const f -> T.Value.Float f
  | Var v -> (
      match Var.Map.find_opt v env with
      | Some n -> T.Value.Int n
      | None -> err "unbound variable %s" (Var.name v))
  | Binop (op, a, b) -> (
      let x = eval_expr ctx env a and y = eval_expr ctx env b in
      match op with
      | Add -> T.Value.add x y
      | Sub -> T.Value.sub x y
      | Mul -> T.Value.mul x y
      | Div -> (
          (* Index arithmetic uses floor division; match Simplify. *)
          match (x, y) with
          | T.Value.Int a, T.Value.Int b when b <> 0 ->
              T.Value.Int (Simplify.fold_binop Div a b)
          | _, _ -> T.Value.div x y)
      | Mod -> (
          match (x, y) with
          | T.Value.Int a, T.Value.Int b when b <> 0 ->
              T.Value.Int (Simplify.fold_binop Mod a b)
          | _, _ -> T.Value.rem x y)
      | Min -> T.Value.min_v x y
      | Max -> T.Value.max_v x y)
  | Cmp (op, a, b) ->
      let x = eval_expr ctx env a and y = eval_expr ctx env b in
      let c = T.Value.compare x y in
      let r =
        match op with
        | Lt -> c < 0
        | Le -> c <= 0
        | Gt -> c > 0
        | Ge -> c >= 0
        | Eq -> c = 0
        | Ne -> c <> 0
      in
      T.Value.Int (if r then 1 else 0)
  | And (a, b) ->
      let x = truthy ctx env a in
      T.Value.Int (if x && truthy ctx env b then 1 else 0)
  | Or (a, b) ->
      let x = truthy ctx env a in
      T.Value.Int (if x || truthy ctx env b then 1 else 0)
  | Not a -> T.Value.Int (if truthy ctx env a then 0 else 1)
  | Select (c, t, f) ->
      if truthy ctx env c then eval_expr ctx env t else eval_expr ctx env f
  | Load (buf, idx) ->
      let off = eval_index ctx env idx in
      if ctx.side = Kernel_side then
        ctx.counters.kernel_loads <- ctx.counters.kernel_loads + 1;
      read_buf ctx buf off
  | Cast (dt, a) -> (
      (* Integer operands keep C integer-truncation (wrap) semantics;
         float operands go through the pinned saturating conversion
         (NaN -> 0, truncate toward zero, saturate to int32 range).
         See the Cast documentation in expr.mli. *)
      let v = eval_expr ctx env a in
      match (dt, v) with
      | T.Dtype.I8, T.Value.Int n -> T.Value.Int (T.Dtype.wrap_i8 n)
      | T.Dtype.I8, T.Value.Float f ->
          T.Value.Int (T.Dtype.wrap_i8 (T.Dtype.int_of_f32 f))
      | T.Dtype.I32, T.Value.Int n -> T.Value.Int (T.Dtype.wrap_i32 n)
      | T.Dtype.I32, T.Value.Float f -> T.Value.Int (T.Dtype.int_of_f32 f)
      | T.Dtype.F32, v -> T.Value.Float (T.Dtype.round_f32 (T.Value.to_float v)))

and truthy ctx env e =
  match eval_expr ctx env e with
  | T.Value.Int 0 -> false
  | T.Value.Int _ -> true
  | T.Value.Float f -> f <> 0.

and eval_index ctx env e =
  match eval_expr ctx env e with
  | T.Value.Int n -> n
  | T.Value.Float _ -> err "float used as index: %s" (Expr.to_string e)

(* --- statements ----------------------------------------------------- *)

let rec eval_stmt ctx env (s : Stmt.t) : unit =
  match s with
  | Nop | Barrier -> ()
  | Seq ss -> List.iter (eval_stmt ctx env) ss
  | For { var; extent; body; kind = _ } ->
      let n = eval_index ctx env extent in
      for i = 0 to n - 1 do
        eval_stmt ctx (Var.Map.add var i env) body
      done
  | If { cond; then_; else_ } ->
      if truthy ctx env cond then eval_stmt ctx env then_
      else Option.iter (eval_stmt ctx env) else_
  | Store { buf; index; value } ->
      let off = eval_index ctx env index in
      if ctx.side = Kernel_side then
        ctx.counters.kernel_stores <- ctx.counters.kernel_stores + 1;
      write_buf ctx buf off (eval_expr ctx env value)
  | Alloc { buffer; body } ->
      let saved = ctx.wram_mem in
      ctx.wram_mem <- (buffer.Buffer.name, flat_tensor buffer) :: saved;
      eval_stmt ctx env body;
      ctx.wram_mem <- saved
  | Dma { dir; wram; wram_off; mram; mram_off; elems } ->
      if ctx.side = Host_side then err "Dma executed in host code";
      let n = eval_index ctx env elems in
      ctx.counters.dma_ops <- ctx.counters.dma_ops + 1;
      ctx.counters.dma_elems <- ctx.counters.dma_elems + n;
      let woff = eval_index ctx env wram_off
      and moff = eval_index ctx env mram_off in
      for i = 0 to n - 1 do
        match dir with
        | Mram_to_wram ->
            write_buf ctx wram (woff + i) (read_buf ctx mram (moff + i))
        | Wram_to_mram ->
            write_buf ctx mram (moff + i) (read_buf ctx wram (woff + i))
      done
  | Xfer { dir; mode; host; host_off; dpu; mram; mram_off; elems; group_dpus = _ } ->
      if ctx.side = Kernel_side then err "Xfer executed in kernel code";
      let n = eval_index ctx env elems in
      let hoff = eval_index ctx env host_off
      and moff = eval_index ctx env mram_off in
      let host_t =
        match Hashtbl.find_opt ctx.host_mem host with
        | Some t -> t
        | None -> err "Xfer references unknown host buffer %s" host
      in
      let per_dpu =
        match Hashtbl.find_opt ctx.mram_mem mram with
        | Some a -> a
        | None -> err "Xfer references unknown MRAM buffer %s" mram
      in
      let check t off label =
        if off < 0 || off + n > T.Tensor.size t then
          err "Xfer %s out of bounds (%s, off=%d, n=%d, size=%d)" label
            (T.Shape.to_string (T.Tensor.shape t))
            off n (T.Tensor.size t)
      in
      check host_t hoff host;
      (match dir with
      | To_dpu ->
          ctx.counters.xfer_elems_h2d <-
            ctx.counters.xfer_elems_h2d
            + (n * match mode with Broadcast_x -> Array.length per_dpu | Copy | Push -> 1)
      | From_dpu ->
          ctx.counters.xfer_elems_d2h <- ctx.counters.xfer_elems_d2h + n);
      let move mram_t =
        check mram_t moff mram;
        match dir with
        | To_dpu ->
            for i = 0 to n - 1 do
              T.Tensor.set_flat mram_t (moff + i)
                (T.Tensor.get_flat host_t (hoff + i))
            done
        | From_dpu ->
            for i = 0 to n - 1 do
              T.Tensor.set_flat host_t (hoff + i)
                (T.Tensor.get_flat mram_t (moff + i))
            done
      in
      (match mode with
      | Broadcast_x ->
          if dir = From_dpu then err "Broadcast_x only supports host-to-DPU";
          Array.iter move per_dpu
      | Copy | Push ->
          let dpu_id = eval_index ctx env dpu in
          if dpu_id < 0 || dpu_id >= Array.length per_dpu then
            err "Xfer to out-of-range DPU %d" dpu_id;
          move per_dpu.(dpu_id))
  | Launch kname -> (
      match Program.kernel_of ctx.prog kname with
      | None -> err "launch of unknown kernel %s" kname
      | Some k -> run_kernel ctx k)

and run_kernel ctx (k : Program.kernel) =
  (* Walk block-bound loops accumulating the linearized DPU id, then
     execute the per-DPU body (thread loops run sequentially). *)
  let saved_side = ctx.side and saved_dpu = ctx.dpu in
  ctx.side <- Kernel_side;
  let rec go env dpu_acc (s : Stmt.t) =
    match s with
    | For { var; extent; kind = Bound (Block_x | Block_y | Block_z); body } ->
        let n = eval_index ctx env extent in
        for i = 0 to n - 1 do
          go (Var.Map.add var i env) ((dpu_acc * n) + i) body
        done
    | s ->
        ctx.dpu <- dpu_acc;
        eval_stmt ctx env s
  in
  go Var.Map.empty 0 k.body;
  ctx.side <- saved_side;
  ctx.dpu <- saved_dpu

let run_counted (p : Program.t) ~inputs =
  (match Program.validate p with
  | Ok () -> ()
  | Error m -> err "invalid program: %s" m);
  let ctx =
    {
      prog = p;
      host_mem = Hashtbl.create 8;
      mram_mem = Hashtbl.create 8;
      wram_mem = [];
      dpu = 0;
      side = Host_side;
      counters = fresh_counters ();
    }
  in
  List.iter
    (fun (b : Buffer.t) ->
      let t =
        match List.assoc_opt b.name inputs with
        | Some t ->
            if T.Tensor.size t <> b.elems then
              err "input %s has %d elements, buffer declares %d" b.name
                (T.Tensor.size t) b.elems;
            T.Tensor.copy t
        | None -> flat_tensor b
      in
      Hashtbl.replace ctx.host_mem b.name t)
    p.host_buffers;
  let ndpus = Program.dpus_used p in
  (* Poison MRAM contents so results that depend on untransferred
     padding (a missing boundary guard) are caught by tests rather than
     silently reading zeros. *)
  let poison (b : Buffer.t) =
    let t = flat_tensor b in
    T.Tensor.fill t
      (match T.Tensor.dtype t with
      | T.Dtype.I8 -> T.Value.Int 77
      | T.Dtype.I32 -> T.Value.Int 1_000_003
      | T.Dtype.F32 -> T.Value.Float 1e9);
    t
  in
  List.iter
    (fun (b : Buffer.t) ->
      Hashtbl.replace ctx.mram_mem b.name
        (Array.init ndpus (fun _ -> poison b)))
    p.mram_buffers;
  ctx.side <- Host_side;
  eval_stmt ctx Var.Map.empty p.host;
  ( List.map
      (fun (b : Buffer.t) -> (b.name, Hashtbl.find ctx.host_mem b.name))
      p.host_buffers,
    ctx.counters )

let run p ~inputs = fst (run_counted p ~inputs)
