let fold_binop op a b =
  match (op : Expr.binop) with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div ->
      (* floor division; lowering only produces non-negative operands
         but stay correct regardless. *)
      if b = 0 then raise Division_by_zero
      else
        let q = a / b and r = a mod b in
        if r <> 0 && r < 0 <> (b < 0) then q - 1 else q
  | Mod ->
      if b = 0 then raise Division_by_zero
      else
        let r = a mod b in
        if r <> 0 && r < 0 <> (b < 0) then r + b else r
  | Min -> min a b
  | Max -> max a b

let fold_cmp op a b =
  match (op : Expr.cmp) with
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b
  | Eq -> a = b
  | Ne -> a <> b

let bool_e b = Expr.Int_const (if b then 1 else 0)

let rec expr (e : Expr.t) : Expr.t =
  match e with
  | Int_const _ | Float_const _ | Var _ -> e
  | Binop (op, a, b) -> simplify_binop op (expr a) (expr b)
  | Cmp (op, a, b) -> (
      let a = expr a and b = expr b in
      match (a, b) with
      | Int_const x, Int_const y -> bool_e (fold_cmp op x y)
      | _, _ -> Cmp (op, a, b))
  | And (a, b) -> (
      match (expr a, expr b) with
      | Int_const 0, _ | _, Int_const 0 -> bool_e false
      | Int_const 1, x | x, Int_const 1 -> x
      | a, b -> And (a, b))
  | Or (a, b) -> (
      match (expr a, expr b) with
      | Int_const 1, _ | _, Int_const 1 -> bool_e true
      | Int_const 0, x | x, Int_const 0 -> x
      | a, b -> Or (a, b))
  | Not a -> (
      match expr a with
      | Int_const 0 -> bool_e true
      | Int_const 1 -> bool_e false
      | Not x -> x
      | x -> Not x)
  | Select (c, t, f) -> (
      match expr c with
      | Int_const 0 -> expr f
      | Int_const n when n <> 0 -> expr t
      | c -> Select (c, expr t, expr f))
  | Load (buf, i) -> Load (buf, expr i)
  | Cast (dt, a) -> (
      match expr a with
      | Int_const n when Imtp_tensor.Dtype.equal dt Imtp_tensor.Dtype.I32 ->
          Int_const n
      | a -> Cast (dt, a))

and simplify_binop op a b : Expr.t =
  match (op, a, b) with
  | _, Expr.Int_const x, Expr.Int_const y -> Int_const (fold_binop op x y)
  | Expr.Add, Int_const 0, x | Expr.Add, x, Int_const 0 -> x
  | Expr.Sub, x, Int_const 0 -> x
  | Expr.Mul, Int_const 0, _ | Expr.Mul, _, Int_const 0 -> Int_const 0
  | Expr.Mul, Int_const 1, x | Expr.Mul, x, Int_const 1 -> x
  | Expr.Div, x, Int_const 1 -> x
  | Expr.Mod, _, Int_const 1 -> Int_const 0
  (* Fold negation chains so tightened bounds like
     Analysis.ceil_div_neg print as (k - r) instead of ((0 - r) + k):
     0 - (0 - x) -> x,  x - (0 - y) -> x + y,  (0 - y) + x -> x - y. *)
  | Expr.Sub, x, Binop (Sub, Int_const 0, y) -> simplify_binop Add x y
  | Expr.Add, Binop (Sub, Int_const 0, y), x
  | Expr.Add, x, Binop (Sub, Int_const 0, y) ->
      simplify_binop Sub x y
  (* Collapse nested floor-div/mod by matching positive constants
     (all sound for the floor semantics of fold_binop):
       (x // b) // c -> x // (b*c)
       (x * k) // c  -> x * (k/c)   when c | k
       (x * k) %  c  -> 0           when c | k
       (x %  b) // c -> 0           when c >= b (0 <= x%b < b)
       (x %  b) %  c -> x % c       when c | b. *)
  | Expr.Div, Binop (Div, x, Int_const b), Int_const c when b > 0 && c > 0 ->
      simplify_binop Div x (Int_const (b * c))
  | Expr.Div, Binop (Mul, x, Int_const k), Int_const c
    when c > 0 && k mod c = 0 ->
      simplify_binop Mul x (Int_const (k / c))
  | Expr.Mod, Binop (Mul, _, Int_const k), Int_const c
    when c > 0 && k mod c = 0 ->
      Int_const 0
  | Expr.Div, Binop (Mod, _, Int_const b), Int_const c when b > 0 && c >= b ->
      Int_const 0
  | Expr.Mod, Binop (Mod, x, Int_const b), Int_const c
    when b > 0 && c > 0 && b mod c = 0 ->
      if b = c then Binop (Mod, x, Int_const b)
      else simplify_binop Mod x (Int_const c)
  (* Re-associate constant addends: (x + c1) + c2 -> x + (c1+c2). *)
  | Expr.Add, Binop (Add, x, Int_const c1), Int_const c2 ->
      simplify_binop Add x (Int_const (c1 + c2))
  | Expr.Add, Int_const c1, Binop (Add, x, Int_const c2) ->
      simplify_binop Add x (Int_const (c1 + c2))
  (* Distribute constants over sums for address canonicalization:
     (x + y) * c -> x*c + y*c when c is a constant. *)
  | Expr.Mul, Binop (Add, x, y), (Int_const _ as c) ->
      simplify_binop Add (simplify_binop Mul x c) (simplify_binop Mul y c)
  | _, _, _ -> Binop (op, a, b)

let rec eval_int env (e : Expr.t) : int option =
  let ( let* ) = Option.bind in
  match e with
  | Int_const n -> Some n
  | Float_const _ | Load _ -> None
  | Var v -> Var.Map.find_opt v env
  | Binop (op, a, b) ->
      let* x = eval_int env a in
      let* y = eval_int env b in
      if (op = Div || op = Mod) && y = 0 then None
      else Some (fold_binop op x y)
  | Cmp (op, a, b) ->
      let* x = eval_int env a in
      let* y = eval_int env b in
      Some (if fold_cmp op x y then 1 else 0)
  | And (a, b) ->
      let* x = eval_int env a in
      let* y = eval_int env b in
      Some (if x <> 0 && y <> 0 then 1 else 0)
  | Or (a, b) ->
      let* x = eval_int env a in
      let* y = eval_int env b in
      Some (if x <> 0 || y <> 0 then 1 else 0)
  | Not a ->
      let* x = eval_int env a in
      Some (if x = 0 then 1 else 0)
  | Select (c, t, f) ->
      let* cv = eval_int env c in
      if cv <> 0 then eval_int env t else eval_int env f
  | Cast (dt, a) ->
      if Imtp_tensor.Dtype.equal dt Imtp_tensor.Dtype.I32 then eval_int env a
      else None

let const_int e = eval_int Var.Map.empty e

let stmt s =
  Stmt.rewrite_bottom_up
    (fun node ->
      match Stmt.map_exprs expr node with
      | Stmt.If { cond = Expr.Int_const n; then_; else_ } ->
          if n <> 0 then then_
          else Option.value else_ ~default:Stmt.Nop
      | Stmt.For { extent = Expr.Int_const n; _ } when n <= 0 -> Stmt.Nop
      | Stmt.For { var; extent = Expr.Int_const 1; body; kind = Stmt.Serial } ->
          Stmt.map_exprs (fun e -> expr (Subst.expr var (Expr.int 0) e)) body
      | s' -> s')
    s
