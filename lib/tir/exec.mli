(** Closure-compiled executor for lowered programs.

    {!Eval} is a tree-walking interpreter: it re-resolves every buffer
    name through hash tables and association lists, re-dispatches on
    {!Expr.t} constructors for every element, and boxes every value.
    This module compiles a {!Program.t} once into nested OCaml closures
    — buffer references resolved to concrete tensor slots, [Var.Map]
    environments replaced by a pre-sized mutable [int array] frame
    indexed by compile-time slots, and int/float expression trees
    specialized into unboxed closures — and then runs the result at
    near-native speed.  It is the hot path of every measurement trial.

    {b Determinism contract}: for any program and inputs, the compiled
    executor is bit-compatible with {!Eval} — identical output tensors,
    identical {!Eval.counters}, and identical {!Eval.Error} exceptions
    (same message, raised at the same execution point, with the same
    counter side effects already applied).  The differential fuzzer
    checks this contract on every case when the compiled backend is
    active.

    The backend is selected by the [IMTP_EXEC] environment variable:
    unset or any value other than ["interp"] selects the compiled
    executor; [IMTP_EXEC=interp] is the escape hatch that routes
    {!run}/{!run_counted} through the interpreter unchanged. *)

type backend = Interp | Compiled

val backend : unit -> backend
(** The backend selected by [IMTP_EXEC] (default [Compiled]). *)

val backend_name : unit -> string
(** ["interp"] or ["compiled"], for observability attributes. *)

type compiled
(** A program staged into closures, reusable across runs ({!compile}
    once, {!run_compiled} many times with fresh state each run). *)

val compile : Program.t -> compiled
(** Stage [p] into closures.  Validation happens here (once) rather
    than per run.
    @raise Eval.Error when the program is invalid, with the same
    message {!Eval.run} would raise. *)

val run_compiled :
  compiled ->
  inputs:(string * Imtp_tensor.Tensor.t) list ->
  (string * Imtp_tensor.Tensor.t) list * Eval.counters
(** Execute a staged program; same contract as {!Eval.run_counted}.
    If an input tensor's dtype differs from its buffer declaration the
    run transparently falls back to the interpreter (the compiled
    closures specialize loads on the declared dtype). *)

val run_counted :
  Program.t ->
  inputs:(string * Imtp_tensor.Tensor.t) list ->
  (string * Imtp_tensor.Tensor.t) list * Eval.counters
(** {!Eval.run_counted}-compatible entry point dispatching on
    {!backend}: compiled by default, the interpreter under
    [IMTP_EXEC=interp]. *)

val run :
  Program.t ->
  inputs:(string * Imtp_tensor.Tensor.t) list ->
  (string * Imtp_tensor.Tensor.t) list
(** {!Eval.run}-compatible entry point dispatching on {!backend}. *)
