(** Analytic timing of a lowered program on the simulated UPMEM machine.

    This is the "hardware measurement" of the autotuning loop: the host
    statement is walked to accumulate transfer, launch and
    post-processing costs; each launched kernel is summarized into a
    per-DPU chunk profile and timed by {!Imtp_upmem.Dpu_model}.  The
    walk is analytic (loop extents multiply), so evaluation cost is
    independent of tensor sizes.

    Interior-DPU worst case: boundary checks are assumed taken, so
    their issue-slot cost is charged even where a boundary DPU would
    skip work — exactly the penalty the PIM-aware passes remove. *)

exception Error of string

val measure : Imtp_upmem.Config.t -> Program.t -> Imtp_upmem.Stats.t
(** @raise Error on non-constant loop extents that cannot be resolved,
    or malformed programs. *)

val kernel_cycles : Imtp_upmem.Config.t -> Program.t -> Program.kernel -> float
(** Cycles of one kernel launch (exposed for the Fig. 3/12 kernel-only
    experiments). *)

val kernel_profile :
  Imtp_upmem.Config.t -> Program.t -> Program.kernel -> Imtp_upmem.Dpu_model.profile
(** The chunk profile backing {!kernel_cycles}, for tests and
    diagnostics. *)

type dma_counts = {
  dma_ops : int;  (** DMA instructions executed across the whole grid. *)
  dma_elems : int;  (** elements moved by MRAM<->WRAM DMA. *)
}

val dma_counts : Program.t -> dma_counts
(** Exact analytic DMA traffic of a program: every kernel launch is
    enumerated loop iteration by loop iteration (guards evaluate under
    the enumeration, so skipped boundary work is excluded), summing DMA
    executions and element counts over all DPUs and tasklets.  The
    result must agree exactly with the [dma_ops]/[dma_elems] fields of
    {!Eval.run_counted} — the fuzz oracle cross-validates the two.

    @raise Error on non-constant loop extents, undecidable guards, or
    programs whose enumeration exceeds the node budget. *)

val dma_estimate : Program.t -> dma_counts
(** Analytic DMA traffic: like the timing walk, loop extents multiply
    instead of being enumerated, guards are assumed taken (an [If]
    contributes its heavier branch) and a variable-length transfer is
    resolved with enclosing loop variables at 0.  An interior-DPU upper
    bound on {!dma_counts} whose evaluation cost is independent of
    tensor sizes — cheap enough to run on every candidate of a search,
    which is exactly what the learned cost model's feature extraction
    does.  Never raises: unresolvable extents count as 1, unknown
    kernels as 0. *)
