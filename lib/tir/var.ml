type t = { name : string; id : int }

(* Atomic so candidates lowered on parallel worker domains still get
   process-unique ids; a plain ref could hand the same id to two
   variables of one program under a racy read-modify-write. *)
let counter = Atomic.make 0

let fresh name = { name; id = Atomic.fetch_and_add counter 1 + 1 }

let name t = t.name
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id

let pp ppf t =
  if t.name = "" then Format.fprintf ppf "v#%d" t.id
  else Format.pp_print_string ppf t.name

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
