(* Closure-compiled executor.

   A Program.t is staged once into nested OCaml closures over a small
   mutable runtime state: buffer names resolved to array slots at
   compile time, loop variables held in a pre-sized [int array] frame
   indexed by compile-time slots, and expression trees specialized into
   unboxed [rt -> int] / [rt -> float] closures wherever the static
   type is known (falling back to boxed [Value.t] closures for
   mixed-type Min/Max/Select, which are type-preserving in Eval).

   The contract is bit-compatibility with Eval: identical outputs,
   identical counters, and identical Eval.Error exceptions raised at
   the same execution points with the same counter side effects already
   applied.  Every deviation from the obvious compilation below is in
   service of that contract — evaluation order (operands left to right,
   DMA reads before writes, counter bumps before scope errors), the
   exact error strings, and Eval's quirks (float-compared integer
   Min/Max, Division_by_zero only on an [Int 0] divisor, [dma_elems]
   counting negative extents) are all replicated. *)

module T = Imtp_tensor
module D = Imtp_tensor.Dtype

let err fmt = Printf.ksprintf (fun m -> raise (Eval.Error m)) fmt

type backend = Interp | Compiled

let backend () =
  match Sys.getenv_opt "IMTP_EXEC" with
  | Some "interp" -> Interp
  | Some _ | None -> Compiled

let backend_name () =
  match backend () with Interp -> "interp" | Compiled -> "compiled"

(* --- runtime state --------------------------------------------------- *)

type rt = {
  host : T.Tensor.t array;  (* slot = position in Program.host_buffers *)
  mram : T.Tensor.t array array;  (* slot -> per-DPU tensors *)
  wram : T.Tensor.t array;  (* slot = Alloc site; live inside its body *)
  frame : int array;  (* slot = loop-binder site *)
  mutable dpu : int;
  counters : Eval.counters;
}

(* --- compile-time state ---------------------------------------------- *)

type state = {
  prog : Program.t;
  host_slots : (string * (int * Buffer.t)) list;
  mram_slots : (string * (int * Buffer.t)) list;
  mutable n_frame : int;
  mutable n_wram : int;
}

type cside = Host_c | Kernel_c

type scope = {
  vars : (Var.t * int) list;  (* innermost-first *)
  allocs : (string * (int * Buffer.t)) list;  (* innermost-first *)
  side : cside;
}

(* Name resolution, in Eval.read_buf's order: the innermost enclosing
   Alloc first, then MRAM, then host.  The program tree is lexically
   scoped, so resolving each access site against its enclosing Alloc
   chain reproduces Eval's dynamic assoc-list exactly (kernels resolve
   against the chain active at their Launch site, which is why Launch
   compiles its kernel per site). *)
type target =
  | Twram of int * Buffer.t
  | Tmram of int * Buffer.t
  | Thost of int * Buffer.t
  | Tunknown

let resolve st sc name =
  match List.assoc_opt name sc.allocs with
  | Some (slot, b) -> Twram (slot, b)
  | None -> (
      match List.assoc_opt name st.mram_slots with
      | Some (slot, b) -> Tmram (slot, b)
      | None -> (
          match List.assoc_opt name st.host_slots with
          | Some (slot, b) -> Thost (slot, b)
          | None -> Tunknown))

let flat_tensor (b : Buffer.t) =
  T.Tensor.create b.Buffer.dtype (T.Shape.create [ b.Buffer.elems ])

(* --- compiled expressions -------------------------------------------- *)

type code =
  | I of (rt -> int)
  | F of (rt -> float)
  | V of (rt -> T.Value.t)  (* generic fallback, Eval-boxed semantics *)

let as_value = function
  | I f -> fun rt -> T.Value.Int (f rt)
  | F f -> fun rt -> T.Value.Float (f rt)
  | V f -> f

let as_truth = function
  | I f -> fun rt -> f rt <> 0
  | F f -> fun rt -> f rt <> 0.
  | V f -> (
      fun rt ->
        match f rt with
        | T.Value.Int 0 -> false
        | T.Value.Int _ -> true
        | T.Value.Float x -> x <> 0.)

(* Eval's generic Binop semantics (including the floor-division special
   case for non-zero integer divisors), for the boxed fallback. *)
let apply_binop (op : Expr.binop) x y =
  match op with
  | Add -> T.Value.add x y
  | Sub -> T.Value.sub x y
  | Mul -> T.Value.mul x y
  | Div -> (
      match (x, y) with
      | T.Value.Int a, T.Value.Int b when b <> 0 ->
          T.Value.Int (Simplify.fold_binop Div a b)
      | _, _ -> T.Value.div x y)
  | Mod -> (
      match (x, y) with
      | T.Value.Int a, T.Value.Int b when b <> 0 ->
          T.Value.Int (Simplify.fold_binop Mod a b)
      | _, _ -> T.Value.rem x y)
  | Min -> T.Value.min_v x y
  | Max -> T.Value.max_v x y

let comp_binop (op : Expr.binop) ca cb =
  match (ca, cb) with
  | I fa, I fb -> (
      match op with
      | Add -> I (fun rt -> let x = fa rt in let y = fb rt in D.wrap_i32 (x + y))
      | Sub -> I (fun rt -> let x = fa rt in let y = fb rt in D.wrap_i32 (x - y))
      | Mul -> I (fun rt -> let x = fa rt in let y = fb rt in D.wrap_i32 (x * y))
      | Div ->
          I
            (fun rt ->
              let x = fa rt in
              let y = fb rt in
              if y <> 0 then Simplify.fold_binop Div x y
              else raise Division_by_zero)
      | Mod ->
          I
            (fun rt ->
              let x = fa rt in
              let y = fb rt in
              if y <> 0 then Simplify.fold_binop Mod x y
              else raise Division_by_zero)
      (* Value.min_v/max_v compare via to_float even for two ints;
         replicate so constants beyond the float53 range agree. *)
      | Min ->
          I
            (fun rt ->
              let x = fa rt in
              let y = fb rt in
              if float_of_int x <= float_of_int y then x else y)
      | Max ->
          I
            (fun rt ->
              let x = fa rt in
              let y = fb rt in
              if float_of_int x >= float_of_int y then x else y))
  | F fa, F fb -> (
      match op with
      | Add -> F (fun rt -> let x = fa rt in let y = fb rt in D.round_f32 (x +. y))
      | Sub -> F (fun rt -> let x = fa rt in let y = fb rt in D.round_f32 (x -. y))
      | Mul -> F (fun rt -> let x = fa rt in let y = fb rt in D.round_f32 (x *. y))
      (* A float divisor never raises (Eval checks for [Int 0] only). *)
      | Div -> F (fun rt -> let x = fa rt in let y = fb rt in D.round_f32 (x /. y))
      | Mod ->
          F (fun rt -> let x = fa rt in let y = fb rt in D.round_f32 (Float.rem x y))
      (* min_v/max_v return an operand unchanged: no rounding. *)
      | Min -> F (fun rt -> let x = fa rt in let y = fb rt in if x <= y then x else y)
      | Max -> F (fun rt -> let x = fa rt in let y = fb rt in if x >= y then x else y))
  | I fa, F fb -> (
      match op with
      | Add ->
          F (fun rt -> let x = fa rt in let y = fb rt in D.round_f32 (float_of_int x +. y))
      | Sub ->
          F (fun rt -> let x = fa rt in let y = fb rt in D.round_f32 (float_of_int x -. y))
      | Mul ->
          F (fun rt -> let x = fa rt in let y = fb rt in D.round_f32 (float_of_int x *. y))
      | Div ->
          F (fun rt -> let x = fa rt in let y = fb rt in D.round_f32 (float_of_int x /. y))
      | Mod ->
          F
            (fun rt ->
              let x = fa rt in
              let y = fb rt in
              D.round_f32 (Float.rem (float_of_int x) y))
      | Min | Max ->
          (* type-preserving on mixed operands: generic *)
          let va = as_value (I fa) and vb = as_value (F fb) in
          V (fun rt -> let x = va rt in let y = vb rt in apply_binop op x y))
  | F fa, I fb -> (
      match op with
      | Add ->
          F (fun rt -> let x = fa rt in let y = fb rt in D.round_f32 (x +. float_of_int y))
      | Sub ->
          F (fun rt -> let x = fa rt in let y = fb rt in D.round_f32 (x -. float_of_int y))
      | Mul ->
          F (fun rt -> let x = fa rt in let y = fb rt in D.round_f32 (x *. float_of_int y))
      (* An integer divisor of 0 raises even under float promotion. *)
      | Div ->
          F
            (fun rt ->
              let x = fa rt in
              let y = fb rt in
              if y = 0 then raise Division_by_zero
              else D.round_f32 (x /. float_of_int y))
      | Mod ->
          F
            (fun rt ->
              let x = fa rt in
              let y = fb rt in
              if y = 0 then raise Division_by_zero
              else D.round_f32 (Float.rem x (float_of_int y)))
      | Min | Max ->
          let va = as_value (F fa) and vb = as_value (I fb) in
          V (fun rt -> let x = va rt in let y = vb rt in apply_binop op x y))
  | (V _, _ | _, V _) ->
      let va = as_value ca and vb = as_value cb in
      V (fun rt -> let x = va rt in let y = vb rt in apply_binop op x y)

let comp_cmp (op : Expr.cmp) ca cb =
  let test : int -> bool =
    match op with
    | Lt -> fun c -> c < 0
    | Le -> fun c -> c <= 0
    | Gt -> fun c -> c > 0
    | Ge -> fun c -> c >= 0
    | Eq -> fun c -> c = 0
    | Ne -> fun c -> c <> 0
  in
  match (ca, cb) with
  | I fa, I fb ->
      I
        (fun rt ->
          let x = fa rt in
          let y = fb rt in
          if test (Int.compare x y) then 1 else 0)
  | F fa, F fb ->
      (* Float.compare semantics (total order on NaN), as Value.compare. *)
      I
        (fun rt ->
          let x = fa rt in
          let y = fb rt in
          if test (Float.compare x y) then 1 else 0)
  | I fa, F fb ->
      I
        (fun rt ->
          let x = fa rt in
          let y = fb rt in
          if test (Float.compare (float_of_int x) y) then 1 else 0)
  | F fa, I fb ->
      I
        (fun rt ->
          let x = fa rt in
          let y = fb rt in
          if test (Float.compare x (float_of_int y)) then 1 else 0)
  | (V _, _ | _, V _) ->
      let va = as_value ca and vb = as_value cb in
      I
        (fun rt ->
          let x = va rt in
          let y = vb rt in
          if test (T.Value.compare x y) then 1 else 0)

(* --- generic per-element buffer access (DMA fallback path) ----------- *)

let comp_read_elem st sc name : rt -> int -> T.Value.t =
  match resolve st sc name with
  | Twram (slot, b) ->
      let elems = b.Buffer.elems in
      fun rt off ->
        if off < 0 || off >= elems then
          err "wram read out of bounds: %s[%d]" name off
        else T.Tensor.get_flat rt.wram.(slot) off
  | Tmram (slot, b) -> (
      match sc.side with
      | Host_c ->
          fun _ _ -> err "host code reads MRAM buffer %s directly (use Xfer)" name
      | Kernel_c ->
          let elems = b.Buffer.elems in
          fun rt off ->
            if off < 0 || off >= elems then
              err "mram read out of bounds: %s[%d] (dpu %d)" name off rt.dpu
            else T.Tensor.get_flat rt.mram.(slot).(rt.dpu) off)
  | Thost (slot, b) -> (
      match sc.side with
      | Kernel_c -> fun _ _ -> err "kernel reads host buffer %s" name
      | Host_c ->
          let elems = b.Buffer.elems in
          fun rt off ->
            if off < 0 || off >= elems then
              err "host read out of bounds: %s[%d]" name off
            else T.Tensor.get_flat rt.host.(slot) off)
  | Tunknown -> fun _ _ -> err "read from unknown buffer %s" name

let comp_write_elem st sc name : rt -> int -> T.Value.t -> unit =
  match resolve st sc name with
  | Twram (slot, b) ->
      let elems = b.Buffer.elems in
      fun rt off v ->
        if off < 0 || off >= elems then
          err "wram write out of bounds: %s[%d]" name off
        else T.Tensor.set_flat rt.wram.(slot) off v
  | Tmram (slot, b) -> (
      match sc.side with
      | Host_c ->
          fun _ _ _ ->
            err "host code writes MRAM buffer %s directly (use Xfer)" name
      | Kernel_c ->
          let elems = b.Buffer.elems in
          fun rt off v ->
            if off < 0 || off >= elems then
              err "mram write out of bounds: %s[%d] (dpu %d)" name off rt.dpu
            else T.Tensor.set_flat rt.mram.(slot).(rt.dpu) off v)
  | Thost (slot, b) -> (
      match sc.side with
      | Kernel_c -> fun _ _ _ -> err "kernel writes host buffer %s" name
      | Host_c ->
          let elems = b.Buffer.elems in
          fun rt off v ->
            if off < 0 || off >= elems then
              err "host write out of bounds: %s[%d]" name off
            else T.Tensor.set_flat rt.host.(slot) off v)
  | Tunknown -> fun _ _ _ -> err "write to unknown buffer %s" name

(* --- the compiler ----------------------------------------------------- *)

let rec comp_expr st sc (e : Expr.t) : code =
  match e with
  | Int_const n -> I (fun _ -> n)
  | Float_const f -> F (fun _ -> f)
  | Var v -> (
      let rec find = function
        | [] -> None
        | (u, slot) :: rest -> if Var.equal u v then Some slot else find rest
      in
      match find sc.vars with
      | Some slot -> I (fun rt -> rt.frame.(slot))
      | None ->
          let msg = "unbound variable " ^ Var.name v in
          I (fun _ -> raise (Eval.Error msg)))
  | Binop (op, a, b) -> comp_binop op (comp_expr st sc a) (comp_expr st sc b)
  | Cmp (op, a, b) -> comp_cmp op (comp_expr st sc a) (comp_expr st sc b)
  | And (a, b) ->
      let ta = as_truth (comp_expr st sc a)
      and tb = as_truth (comp_expr st sc b) in
      I (fun rt -> if ta rt && tb rt then 1 else 0)
  | Or (a, b) ->
      let ta = as_truth (comp_expr st sc a)
      and tb = as_truth (comp_expr st sc b) in
      I (fun rt -> if ta rt || tb rt then 1 else 0)
  | Not a ->
      let ta = as_truth (comp_expr st sc a) in
      I (fun rt -> if ta rt then 0 else 1)
  | Select (c, t, f) -> (
      let tc = as_truth (comp_expr st sc c) in
      let ct = comp_expr st sc t and cf = comp_expr st sc f in
      match (ct, cf) with
      | I ft, I ff -> I (fun rt -> if tc rt then ft rt else ff rt)
      | F ft, F ff -> F (fun rt -> if tc rt then ft rt else ff rt)
      | _ ->
          let vt = as_value ct and vf = as_value cf in
          V (fun rt -> if tc rt then vt rt else vf rt))
  | Load (buf, idx) -> comp_load st sc buf (comp_index st sc idx)
  | Cast (dt, a) -> (
      let ca = comp_expr st sc a in
      match (dt, ca) with
      | D.I8, I f -> I (fun rt -> D.wrap_i8 (f rt))
      | D.I8, F f -> I (fun rt -> D.wrap_i8 (D.int_of_f32 (f rt)))
      | D.I8, V f ->
          I
            (fun rt ->
              match f rt with
              | T.Value.Int n -> D.wrap_i8 n
              | T.Value.Float x -> D.wrap_i8 (D.int_of_f32 x))
      | D.I32, I f -> I (fun rt -> D.wrap_i32 (f rt))
      | D.I32, F f -> I (fun rt -> D.int_of_f32 (f rt))
      | D.I32, V f ->
          I
            (fun rt ->
              match f rt with
              | T.Value.Int n -> D.wrap_i32 n
              | T.Value.Float x -> D.int_of_f32 x)
      | D.F32, I f -> F (fun rt -> D.round_f32 (float_of_int (f rt)))
      | D.F32, F f -> F (fun rt -> D.round_f32 (f rt))
      | D.F32, V f -> F (fun rt -> D.round_f32 (T.Value.to_float (f rt))))

(* Index contexts: float-valued expressions are evaluated (for their
   side effects and errors) and then rejected with Eval's message. *)
and comp_index st sc (e : Expr.t) : rt -> int =
  match comp_expr st sc e with
  | I f -> f
  | F f ->
      let msg = "float used as index: " ^ Expr.to_string e in
      fun rt ->
        let _ = f rt in
        raise (Eval.Error msg)
  | V f -> (
      let msg = "float used as index: " ^ Expr.to_string e in
      fun rt ->
        match f rt with
        | T.Value.Int n -> n
        | T.Value.Float _ -> raise (Eval.Error msg))

and comp_load st sc name get_off : code =
  let in_k = sc.side = Kernel_c in
  let mk ~check ~tensor (dt : D.t) =
    match dt with
    | D.I8 | D.I32 ->
        I
          (fun rt ->
            let off = get_off rt in
            if in_k then
              rt.counters.Eval.kernel_loads <- rt.counters.Eval.kernel_loads + 1;
            check rt off;
            T.Tensor.get_int_flat (tensor rt) off)
    | D.F32 ->
        F
          (fun rt ->
            let off = get_off rt in
            if in_k then
              rt.counters.Eval.kernel_loads <- rt.counters.Eval.kernel_loads + 1;
            check rt off;
            T.Tensor.get_float_flat (tensor rt) off)
  in
  (* The scope-error closures evaluate the index first and bump the
     kernel-load counter before raising, exactly as Eval does. *)
  let raising msg_fn =
    I
      (fun rt ->
        let _ = get_off rt in
        if in_k then
          rt.counters.Eval.kernel_loads <- rt.counters.Eval.kernel_loads + 1;
        msg_fn ())
  in
  match resolve st sc name with
  | Twram (slot, b) ->
      let elems = b.Buffer.elems in
      mk b.Buffer.dtype
        ~check:(fun _ off ->
          if off < 0 || off >= elems then
            err "wram read out of bounds: %s[%d]" name off)
        ~tensor:(fun rt -> rt.wram.(slot))
  | Tmram (slot, b) -> (
      match sc.side with
      | Host_c ->
          raising (fun () ->
              err "host code reads MRAM buffer %s directly (use Xfer)" name)
      | Kernel_c ->
          let elems = b.Buffer.elems in
          mk b.Buffer.dtype
            ~check:(fun rt off ->
              if off < 0 || off >= elems then
                err "mram read out of bounds: %s[%d] (dpu %d)" name off rt.dpu)
            ~tensor:(fun rt -> rt.mram.(slot).(rt.dpu)))
  | Thost (slot, b) -> (
      match sc.side with
      | Kernel_c -> raising (fun () -> err "kernel reads host buffer %s" name)
      | Host_c ->
          let elems = b.Buffer.elems in
          mk b.Buffer.dtype
            ~check:(fun _ off ->
              if off < 0 || off >= elems then
                err "host read out of bounds: %s[%d]" name off)
            ~tensor:(fun rt -> rt.host.(slot)))
  | Tunknown -> raising (fun () -> err "read from unknown buffer %s" name)

and comp_store st sc name coff cval : rt -> unit =
  let in_k = sc.side = Kernel_c in
  (* Order, as in Eval: offset, counter bump, value, bounds, store. *)
  let mk ~check ~tensor =
    match cval with
    | I fv ->
        fun rt ->
          let off = coff rt in
          if in_k then
            rt.counters.Eval.kernel_stores <- rt.counters.Eval.kernel_stores + 1;
          let v = fv rt in
          check rt off;
          T.Tensor.set_int_flat (tensor rt) off v
    | F fv ->
        fun rt ->
          let off = coff rt in
          if in_k then
            rt.counters.Eval.kernel_stores <- rt.counters.Eval.kernel_stores + 1;
          let v = fv rt in
          check rt off;
          T.Tensor.set_float_flat (tensor rt) off v
    | V fv ->
        fun rt ->
          let off = coff rt in
          if in_k then
            rt.counters.Eval.kernel_stores <- rt.counters.Eval.kernel_stores + 1;
          let v = fv rt in
          check rt off;
          T.Tensor.set_flat (tensor rt) off v
  in
  let raising msg_fn =
    let vfn = as_value cval in
    fun rt ->
      let _ = coff rt in
      if in_k then
        rt.counters.Eval.kernel_stores <- rt.counters.Eval.kernel_stores + 1;
      let _ = vfn rt in
      msg_fn ()
  in
  match resolve st sc name with
  | Twram (slot, b) ->
      let elems = b.Buffer.elems in
      mk
        ~check:(fun _ off ->
          if off < 0 || off >= elems then
            err "wram write out of bounds: %s[%d]" name off)
        ~tensor:(fun rt -> rt.wram.(slot))
  | Tmram (slot, b) -> (
      match sc.side with
      | Host_c ->
          raising (fun () ->
              err "host code writes MRAM buffer %s directly (use Xfer)" name)
      | Kernel_c ->
          let elems = b.Buffer.elems in
          mk
            ~check:(fun rt off ->
              if off < 0 || off >= elems then
                err "mram write out of bounds: %s[%d] (dpu %d)" name off rt.dpu)
            ~tensor:(fun rt -> rt.mram.(slot).(rt.dpu)))
  | Thost (slot, b) -> (
      match sc.side with
      | Kernel_c -> raising (fun () -> err "kernel writes host buffer %s" name)
      | Host_c ->
          let elems = b.Buffer.elems in
          mk
            ~check:(fun _ off ->
              if off < 0 || off >= elems then
                err "host write out of bounds: %s[%d]" name off)
            ~tensor:(fun rt -> rt.host.(slot)))
  | Tunknown -> raising (fun () -> err "write to unknown buffer %s" name)

and comp_stmt st sc (s : Stmt.t) : rt -> unit =
  match s with
  | Nop | Barrier -> fun _ -> ()
  | Seq ss ->
      let cs = Array.of_list (List.map (comp_stmt st sc) ss) in
      let n = Array.length cs in
      fun rt ->
        for i = 0 to n - 1 do
          cs.(i) rt
        done
  | For { var; extent; body; kind = _ } ->
      let slot = st.n_frame in
      st.n_frame <- st.n_frame + 1;
      let cext = comp_index st sc extent in
      let cbody = comp_stmt st { sc with vars = (var, slot) :: sc.vars } body in
      fun rt ->
        let n = cext rt in
        for i = 0 to n - 1 do
          rt.frame.(slot) <- i;
          cbody rt
        done
  | If { cond; then_; else_ } -> (
      let tc = as_truth (comp_expr st sc cond) in
      let ct = comp_stmt st sc then_ in
      match else_ with
      | None -> fun rt -> if tc rt then ct rt
      | Some e ->
          let ce = comp_stmt st sc e in
          fun rt -> if tc rt then ct rt else ce rt)
  | Store { buf; index; value } ->
      comp_store st sc buf (comp_index st sc index) (comp_expr st sc value)
  | Alloc { buffer; body } ->
      let slot = st.n_wram in
      st.n_wram <- st.n_wram + 1;
      let cbody =
        comp_stmt st
          { sc with allocs = (buffer.Buffer.name, (slot, buffer)) :: sc.allocs }
          body
      in
      fun rt ->
        rt.wram.(slot) <- flat_tensor buffer;
        cbody rt
  | Dma { dir; wram; wram_off; mram; mram_off; elems } -> (
      match sc.side with
      | Host_c -> fun _ -> err "Dma executed in host code"
      | Kernel_c ->
          let celems = comp_index st sc elems in
          let cwoff = comp_index st sc wram_off in
          let cmoff = comp_index st sc mram_off in
          let read_w = comp_read_elem st sc wram
          and write_w = comp_write_elem st sc wram
          and read_m = comp_read_elem st sc mram
          and write_m = comp_write_elem st sc mram in
          (* Bulk fast path when both names resolve to kernel-side
             memories with statically known extents; anything else
             (scope errors, out-of-bounds) takes the per-element loop,
             which raises Eval's message at Eval's element. *)
          let acc = function
            | Twram (slot, b) ->
                Some ((fun rt -> rt.wram.(slot)), b.Buffer.elems)
            | Tmram (slot, b) ->
                Some ((fun rt -> rt.mram.(slot).(rt.dpu)), b.Buffer.elems)
            | Thost _ | Tunknown -> None
          in
          let fast =
            match (acc (resolve st sc wram), acc (resolve st sc mram)) with
            | Some (wget, wsize), Some (mget, msize) ->
                Some (wget, wsize, mget, msize)
            | _ -> None
          in
          fun rt ->
            let n = celems rt in
            rt.counters.Eval.dma_ops <- rt.counters.Eval.dma_ops + 1;
            rt.counters.Eval.dma_elems <- rt.counters.Eval.dma_elems + n;
            let woff = cwoff rt in
            let moff = cmoff rt in
            match fast with
            | Some (wget, wsize, mget, msize)
              when n >= 0 && woff >= 0 && moff >= 0 && woff + n <= wsize
                   && moff + n <= msize -> (
                let wt = wget rt and mt = mget rt in
                match dir with
                | Stmt.Mram_to_wram ->
                    T.Tensor.blit_flat ~src:mt ~src_off:moff ~dst:wt
                      ~dst_off:woff n
                | Stmt.Wram_to_mram ->
                    T.Tensor.blit_flat ~src:wt ~src_off:woff ~dst:mt
                      ~dst_off:moff n)
            | _ -> (
                for i = 0 to n - 1 do
                  match dir with
                  | Stmt.Mram_to_wram ->
                      let v = read_m rt (moff + i) in
                      write_w rt (woff + i) v
                  | Stmt.Wram_to_mram ->
                      let v = read_w rt (woff + i) in
                      write_m rt (moff + i) v
                done))
  | Xfer { dir; mode; host; host_off; dpu; mram; mram_off; elems; group_dpus = _ }
    -> (
      match sc.side with
      | Kernel_c -> fun _ -> err "Xfer executed in kernel code"
      | Host_c ->
          let celems = comp_index st sc elems in
          let choff = comp_index st sc host_off in
          let cmoff = comp_index st sc mram_off in
          let cdpu = comp_index st sc dpu in
          let hslot = List.assoc_opt host st.host_slots in
          let mslot = List.assoc_opt mram st.mram_slots in
          fun rt ->
            let n = celems rt in
            let hoff = choff rt in
            let moff = cmoff rt in
            let hslot =
              match hslot with
              | Some (s, _) -> s
              | None -> err "Xfer references unknown host buffer %s" host
            in
            let mslot =
              match mslot with
              | Some (s, _) -> s
              | None -> err "Xfer references unknown MRAM buffer %s" mram
            in
            let host_t = rt.host.(hslot) in
            let per_dpu = rt.mram.(mslot) in
            let check t off label =
              if off < 0 || off + n > T.Tensor.size t then
                err "Xfer %s out of bounds (%s, off=%d, n=%d, size=%d)" label
                  (T.Shape.to_string (T.Tensor.shape t))
                  off n (T.Tensor.size t)
            in
            check host_t hoff host;
            (match dir with
            | Stmt.To_dpu ->
                rt.counters.Eval.xfer_elems_h2d <-
                  rt.counters.Eval.xfer_elems_h2d
                  + n
                    *
                    (match mode with
                    | Stmt.Broadcast_x -> Array.length per_dpu
                    | Stmt.Copy | Stmt.Push -> 1)
            | Stmt.From_dpu ->
                rt.counters.Eval.xfer_elems_d2h <-
                  rt.counters.Eval.xfer_elems_d2h + n);
            let move mram_t =
              check mram_t moff mram;
              match dir with
              | Stmt.To_dpu ->
                  T.Tensor.blit_flat ~src:host_t ~src_off:hoff ~dst:mram_t
                    ~dst_off:moff n
              | Stmt.From_dpu ->
                  T.Tensor.blit_flat ~src:mram_t ~src_off:moff ~dst:host_t
                    ~dst_off:hoff n
            in
            (match mode with
            | Stmt.Broadcast_x ->
                if dir = Stmt.From_dpu then
                  err "Broadcast_x only supports host-to-DPU";
                Array.iter move per_dpu
            | Stmt.Copy | Stmt.Push ->
                let dpu_id = cdpu rt in
                if dpu_id < 0 || dpu_id >= Array.length per_dpu then
                  err "Xfer to out-of-range DPU %d" dpu_id;
                move per_dpu.(dpu_id)))
  | Launch kname -> (
      match Program.kernel_of st.prog kname with
      | None -> fun _ -> err "launch of unknown kernel %s" kname
      | Some k ->
          (* Kernels start with an empty variable scope but inherit the
             Alloc chain active at the Launch site (Eval's dynamic wram
             list), hence per-site compilation. *)
          let ck =
            comp_kernel st
              { vars = []; allocs = sc.allocs; side = Kernel_c }
              k.Program.body
          in
          fun rt ->
            let saved = rt.dpu in
            ck rt 0;
            rt.dpu <- saved)

(* The block-bound loop spine accumulating the linearized DPU id;
   mirrors Eval.run_kernel's [go]. *)
and comp_kernel st sc (s : Stmt.t) : rt -> int -> unit =
  match s with
  | For { var; extent; kind = Bound (Block_x | Block_y | Block_z); body } ->
      let slot = st.n_frame in
      st.n_frame <- st.n_frame + 1;
      let cext = comp_index st sc extent in
      let cbody = comp_kernel st { sc with vars = (var, slot) :: sc.vars } body in
      fun rt dpu_acc ->
        let n = cext rt in
        for i = 0 to n - 1 do
          rt.frame.(slot) <- i;
          cbody rt ((dpu_acc * n) + i)
        done
  | s ->
      let c = comp_stmt st sc s in
      fun rt dpu_acc ->
        rt.dpu <- dpu_acc;
        c rt

(* --- whole-program staging and execution ------------------------------ *)

type compiled = {
  cprog : Program.t;
  c_n_frame : int;
  c_n_wram : int;
  c_host : rt -> unit;
}

let compile (p : Program.t) : compiled =
  (match Program.validate p with
  | Ok () -> ()
  | Error m -> err "invalid program: %s" m);
  let st =
    {
      prog = p;
      host_slots =
        List.mapi (fun i (b : Buffer.t) -> (b.Buffer.name, (i, b))) p.host_buffers;
      mram_slots =
        List.mapi (fun i (b : Buffer.t) -> (b.Buffer.name, (i, b))) p.mram_buffers;
      n_frame = 0;
      n_wram = 0;
    }
  in
  let c_host = comp_stmt st { vars = []; allocs = []; side = Host_c } p.host in
  { cprog = p; c_n_frame = st.n_frame; c_n_wram = st.n_wram; c_host }

let poison (b : Buffer.t) =
  (* Same constants as Eval: untransferred MRAM padding must be caught
     identically by both executors. *)
  let t = flat_tensor b in
  T.Tensor.fill t
    (match b.Buffer.dtype with
    | D.I8 -> T.Value.Int 77
    | D.I32 -> T.Value.Int 1_000_003
    | D.F32 -> T.Value.Float 1e9);
  t

let run_compiled c ~inputs =
  let p = c.cprog in
  (* The compiled load/store closures specialize on the declared buffer
     dtype; an input tensor of a different dtype would box differently
     in Eval, so those (pathological) runs take the interpreter. *)
  let dtypes_ok =
    List.for_all
      (fun (b : Buffer.t) ->
        match List.assoc_opt b.Buffer.name inputs with
        | Some t -> D.equal (T.Tensor.dtype t) b.Buffer.dtype
        | None -> true)
      p.Program.host_buffers
  in
  if not dtypes_ok then Eval.run_counted p ~inputs
  else begin
    let host =
      Array.of_list
        (List.map
           (fun (b : Buffer.t) ->
             match List.assoc_opt b.Buffer.name inputs with
             | Some t ->
                 if T.Tensor.size t <> b.Buffer.elems then
                   err "input %s has %d elements, buffer declares %d"
                     b.Buffer.name (T.Tensor.size t) b.Buffer.elems;
                 T.Tensor.copy t
             | None -> flat_tensor b)
           p.Program.host_buffers)
    in
    let ndpus = Program.dpus_used p in
    let mram =
      Array.of_list
        (List.map
           (fun b -> Array.init ndpus (fun _ -> poison b))
           p.Program.mram_buffers)
    in
    let placeholder = T.Tensor.create D.I32 (T.Shape.create [ 1 ]) in
    let rt =
      {
        host;
        mram;
        wram = Array.make c.c_n_wram placeholder;
        frame = Array.make c.c_n_frame 0;
        dpu = 0;
        counters =
          {
            Eval.kernel_stores = 0;
            kernel_loads = 0;
            dma_elems = 0;
            dma_ops = 0;
            xfer_elems_h2d = 0;
            xfer_elems_d2h = 0;
          };
      }
    in
    c.c_host rt;
    ( List.mapi
        (fun i (b : Buffer.t) -> (b.Buffer.name, host.(i)))
        p.Program.host_buffers,
      rt.counters )
  end

let run_counted p ~inputs =
  match backend () with
  | Interp -> Eval.run_counted p ~inputs
  | Compiled -> run_compiled (compile p) ~inputs

let run p ~inputs = fst (run_counted p ~inputs)
