(** Quasi-affine bound analysis (Presburger-lite).

    The lowering emits loop nests whose index expressions are integer
    linear combinations of loop variables, floor-divisions and
    modulos by positive constants, and [min]/[max] clamps.  This
    module normalizes such expressions into a canonical affine form
    and answers entailment and range queries over a conjunction of
    integer linear constraints by Fourier–Motzkin elimination with
    integer (gcd) tightening.

    It is the single bounds oracle behind boundary-check elimination
    in the lowering, the affine variants of the §5.3 passes
    (loop-bound tightening, invariant branch hoisting, DMA
    vectorization), and the verifier's partial-tile WRAM footprints.

    Soundness contract: every [True]/[False] answer from {!implies},
    every [true] from {!prove}, and every interval from
    {!bound_range} is a theorem over the integers given the assumed
    facts.  The analysis is deliberately incomplete — [Unknown] /
    [None] mean "could not prove", never "false".  Conditions
    containing floating-point constants, non-[I32] casts, loads, or
    selects are treated as opaque and never participate in
    arithmetic reasoning. *)

type tribool = True | False | Unknown

type ctx
(** A conjunction of integer linear constraints over loop variables
    (and quasi-affine terms derived from them). *)

val empty : ctx

val assume : ctx -> Expr.t -> ctx
(** [assume ctx cond] adds the affine conjuncts of [cond] as facts.
    Non-affine conjuncts (disjunctions, [Ne], float-tainted terms)
    are soundly ignored: the resulting context is weaker, never
    stronger, than the real condition. *)

val assume_range : ctx -> Var.t -> lo:Expr.t -> hi:Expr.t -> ctx
(** [assume_range ctx v ~lo ~hi] records [lo <= v < hi]
    (half-open, loop style). *)

val assume_loop : ctx -> Var.t -> Expr.t -> ctx
(** [assume_loop ctx v extent] records [0 <= v < extent]. *)

val prove : ctx -> Expr.t -> bool
(** [prove ctx cond] is [true] only when [cond] holds for every
    integer assignment satisfying [ctx]. *)

val implies : ctx -> Expr.t -> tribool
(** [True] when [ctx] entails [cond]; [False] when [ctx] entails
    [not cond]; [Unknown] otherwise. *)

val infeasible : ctx -> bool
(** [true] only when no integer assignment satisfies [ctx]. *)

val bound_range : ctx -> Expr.t -> (int * int) option
(** [bound_range ctx e = Some (lo, hi)] when [lo <= e <= hi] holds
    under [ctx] (both bounds inclusive and constant).  [None] when
    either side is unbounded or the expression is not quasi-affine. *)

val lower_bound : ctx -> Expr.t -> int option
val upper_bound : ctx -> Expr.t -> int option
(** One-sided versions of {!bound_range}. *)

val cond_upper_bound : Var.t -> Expr.t -> (Expr.t * bool) option
(** [cond_upper_bound v cond = Some (b, exact)] when [cond] implies
    [v < b] with [b] free of [v].  [exact] is [true] when the
    implication is an equivalence ([cond ⟺ v < b]), in which case a
    guard [cond] inside a loop tightened to [b] iterations can be
    dropped entirely.  Handles linear comparisons with positive or
    negative coefficients on [v], multi-atom residues (outer loop
    variables, floor-divisions, [min]/[max] terms), and [Eq]
    conjuncts (which yield an inexact bound).  Context-free and
    deterministic: the result depends only on [cond]. *)

(** {2 Structural condition helpers}

    Conjunction splitting/rebuilding and the load screen, shared by
    the affine pass drivers and (via the {!Analysis} compatibility
    shim) the legacy pass stack. *)

val conjuncts : Expr.t -> Expr.t list
val conjoin : Expr.t list -> Expr.t
val contains_load : Expr.t -> bool
