(* Quasi-affine normal form + Fourier–Motzkin over integer linear
   constraints.  See affine.mli for the soundness contract. *)

type tribool = True | False | Unknown

(* A form is sum(coeff * atom) + const with atoms sorted and coeffs
   nonzero; atoms are loop variables, floor-divisions / min / max of
   further forms (quasi-affine terms with one-sided defining
   constraints), or opaque residues keyed by their expression. *)
type form = { terms : (atom * int) list; const : int }

and atom =
  | Avar of Var.t
  | Adiv of form * int (* floor(f / c), c >= 2 *)
  | Amin of form * form
  | Amax of form * form
  | Aopaque of Expr.t
  | Aobj (* internal: objective atom for bound queries *)

let compare_atom (a : atom) (b : atom) = Stdlib.compare a b

module Atom_set = Set.Make (struct
  type t = atom

  let compare = compare_atom
end)

let fconst n = { terms = []; const = n }
let fatom a = { terms = [ (a, 1) ]; const = 0 }
let const_of f = match f.terms with [] -> Some f.const | _ -> None

let fadd f g =
  let rec merge xs ys =
    match (xs, ys) with
    | [], l | l, [] -> l
    | (a, ca) :: xs', (b, cb) :: ys' ->
        let c = compare_atom a b in
        if c < 0 then (a, ca) :: merge xs' ys
        else if c > 0 then (b, cb) :: merge xs ys'
        else
          let s = ca + cb in
          if s = 0 then merge xs' ys' else (a, s) :: merge xs' ys'
  in
  { terms = merge f.terms g.terms; const = f.const + g.const }

let fscale k f =
  if k = 0 then fconst 0
  else if k = 1 then f
  else { terms = List.map (fun (a, c) -> (a, c * k)) f.terms; const = f.const * k }

let fneg f = fscale (-1) f
let fsub f g = fadd f (fneg g)
let fequal (f : form) g = Stdlib.compare f g = 0

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* Floor division / modulo for b > 0 (OCaml's (/) truncates). *)
let fdiv_int a b =
  let q = a / b and r = a mod b in
  if r < 0 then q - 1 else q

(* Canonical operand order so min(a,b) and min(b,a) share an atom. *)
let mk_min f g = if Stdlib.compare f g <= 0 then Amin (f, g) else Amin (g, f)
let mk_max f g = if Stdlib.compare f g <= 0 then Amax (f, g) else Amax (g, f)

(* Terms that would let an opaque atom smuggle in a non-integer value
   make gcd tightening unsound, so any condition touching them is
   rejected wholesale (treated as not affine). *)
let rec unsafe (e : Expr.t) =
  match e with
  | Expr.Float_const _ | Load _ | Select _ -> true
  | Cast (dt, a) ->
      (not (Imtp_tensor.Dtype.equal dt Imtp_tensor.Dtype.I32)) || unsafe a
  | Int_const _ | Var _ -> false
  | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
      unsafe a || unsafe b
  | Not a -> unsafe a

(* --- Normalization: Expr.t -> form ------------------------------- *)

let rec norm (e : Expr.t) : form =
  match e with
  | Expr.Int_const n -> fconst n
  | Var v -> fatom (Avar v)
  | Cast (dt, a) when Imtp_tensor.Dtype.equal dt Imtp_tensor.Dtype.I32 ->
      norm a
  | Binop (Add, a, b) -> fadd (norm a) (norm b)
  | Binop (Sub, a, b) -> fsub (norm a) (norm b)
  | Binop (Mul, a, b) -> (
      let fa = norm a and fb = norm b in
      match (const_of fa, const_of fb) with
      | Some k, _ -> fscale k fb
      | _, Some k -> fscale k fa
      | None, None -> fatom (Aopaque e))
  | Binop (Div, a, b) -> (
      let fa = norm a and fb = norm b in
      match const_of fb with
      | Some c when c > 0 -> fdiv_form fa c
      | _ -> fatom (Aopaque e))
  | Binop (Mod, a, b) -> (
      let fa = norm a and fb = norm b in
      match const_of fb with
      | Some c when c > 0 -> fsub fa (fscale c (fdiv_form fa c))
      | _ -> fatom (Aopaque e))
  | Binop (Min, a, b) -> (
      let fa = norm a and fb = norm b in
      match (const_of fa, const_of fb) with
      | Some x, Some y -> fconst (min x y)
      | _ -> if fequal fa fb then fa else fatom (mk_min fa fb))
  | Binop (Max, a, b) -> (
      let fa = norm a and fb = norm b in
      match (const_of fa, const_of fb) with
      | Some x, Some y -> fconst (max x y)
      | _ -> if fequal fa fb then fa else fatom (mk_max fa fb))
  | Float_const _ | Cmp _ | And _ | Or _ | Not _ | Select _ | Load _ | Cast _
    ->
      fatom (Aopaque e)

(* floor((c*Q + R)/c) = Q + floor(R/c): peel the coefficient-divisible
   part, then reduce the residual division by the shared gcd. *)
and fdiv_form f c =
  if c = 1 then f
  else
    match const_of f with
    | Some n -> fconst (fdiv_int n c)
    | None ->
        let quot_terms, rest_terms =
          List.partition (fun (_, k) -> k mod c = 0) f.terms
        in
        let kq = fdiv_int f.const c in
        let rconst = f.const - (kq * c) in
        let quot =
          { terms = List.map (fun (a, k) -> (a, k / c)) quot_terms; const = kq }
        in
        if rest_terms = [] then quot
        else
          let rest = { terms = rest_terms; const = rconst } in
          let g =
            List.fold_left (fun g (_, k) -> gcd g (abs k)) (abs rconst)
              rest_terms
          in
          let g = gcd g c in
          let rest, c =
            if g > 1 then
              ( { terms = List.map (fun (a, k) -> (a, k / g)) rest.terms;
                  const = rest.const / g },
                c / g )
            else (rest, c)
          in
          if c = 1 then fadd quot rest else fadd quot (fatom (Adiv (rest, c)))

(* --- Defining constraints for quasi-affine atoms ------------------ *)

(* Each constraint is a form f meaning f >= 0.  A quasi-affine atom
   carries one-sided facts that its real value always satisfies:
     q = floor(f/c):  c*q <= f <= c*q + c - 1
     m = min(f,g):    m <= f,  m <= g
     m = max(f,g):    m >= f,  m >= g
   These are under-constraining abstractions (sound: every derived
   inequality holds of the real values). *)
let rec collect_atom a ((seen, acc) as st) =
  if Atom_set.mem a seen then st
  else
    let seen = Atom_set.add a seen in
    match a with
    | Avar _ | Aopaque _ | Aobj -> (seen, acc)
    | Adiv (f, c) ->
        let q = fatom a in
        let lo = fsub f (fscale c q) in
        let hi = fadd (fsub (fscale c q) f) (fconst (c - 1)) in
        collect_form f (seen, lo :: hi :: acc)
    | Amin (f, g) ->
        let m = fatom a in
        let acc = fsub f m :: fsub g m :: acc in
        collect_form g (collect_form f (seen, acc))
    | Amax (f, g) ->
        let m = fatom a in
        let acc = fsub m f :: fsub m g :: acc in
        collect_form g (collect_form f (seen, acc))

and collect_form f st =
  List.fold_left (fun st (a, _) -> collect_atom a st) st f.terms

let with_defs cstrs =
  let _, defs =
    List.fold_left (fun st f -> collect_form f st) (Atom_set.empty, []) cstrs
  in
  defs @ cstrs

(* --- Fourier–Motzkin ---------------------------------------------- *)

exception Contradiction

module Form_set = Set.Make (struct
  type t = form

  let compare = Stdlib.compare
end)

(* Integer tightening: sum(c_i x_i) + k >= 0 with g = gcd(c_i) gives
   sum(c_i/g x_i) >= ceil(-k/g) = -floor(k/g). *)
let tighten f =
  match f.terms with
  | [] -> f
  | _ ->
      let g = List.fold_left (fun g (_, c) -> gcd g (abs c)) 0 f.terms in
      if g <= 1 then f
      else
        { terms = List.map (fun (a, c) -> (a, c / g)) f.terms;
          const = fdiv_int f.const g }

let add_normalized set f =
  let f = tighten f in
  if f.terms = [] then if f.const < 0 then raise Contradiction else set
  else Form_set.add f set

let normalize_sys cstrs = List.fold_left add_normalized Form_set.empty cstrs

let atoms_of_sys set =
  Form_set.fold
    (fun f acc ->
      List.fold_left (fun acc (a, _) -> Atom_set.add a acc) acc f.terms)
    set Atom_set.empty

let coeff_of a f =
  match List.find_opt (fun (x, _) -> compare_atom x a = 0) f.terms with
  | Some (_, c) -> c
  | None -> 0

(* Caps: give up (soundly, by relaxation) rather than blow up. *)
let max_coeff = 1 lsl 40
let max_products = 400
let max_constraints = 2000

let too_big f =
  abs f.const > max_coeff
  || List.exists (fun (_, c) -> abs c > max_coeff) f.terms

(* Eliminate atom [a].  When the pairwise combination would exceed the
   budget, drop every constraint mentioning [a] instead: a relaxation,
   so infeasibility answers stay sound and bounds stay valid. *)
let eliminate a set =
  let pos, rest = Form_set.partition (fun f -> coeff_of a f > 0) set in
  let neg, rest = Form_set.partition (fun f -> coeff_of a f < 0) rest in
  let np = Form_set.cardinal pos and nn = Form_set.cardinal neg in
  if np * nn > max_products || Form_set.cardinal set > max_constraints then
    rest
  else
    Form_set.fold
      (fun p acc ->
        let cp = coeff_of a p in
        Form_set.fold
          (fun n acc ->
            let cn = -coeff_of a n in
            let comb = fadd (fscale cn p) (fscale cp n) in
            if too_big comb then acc else add_normalized acc comb)
          neg acc)
      pos rest

let rec fm_run ~keep set =
  let atoms = Atom_set.filter (fun a -> not (keep a)) (atoms_of_sys set) in
  if Atom_set.is_empty atoms then set
  else
    (* Pick the atom with the fewest pairwise products. *)
    let best, _ =
      Atom_set.fold
        (fun a (best, cost) ->
          let np =
            Form_set.fold
              (fun f n -> if coeff_of a f > 0 then n + 1 else n)
              set 0
          and nn =
            Form_set.fold
              (fun f n -> if coeff_of a f < 0 then n + 1 else n)
              set 0
          in
          let c = np * nn in
          match best with
          | None -> (Some a, c)
          | Some _ -> if c < cost then (Some a, c) else (best, cost))
        atoms (None, 0)
    in
    match best with
    | None -> set
    | Some a -> fm_run ~keep (eliminate a set)

let infeasible_sys cstrs =
  try
    let set = normalize_sys (with_defs cstrs) in
    let _ = fm_run ~keep:(fun _ -> false) set in
    false
  with Contradiction -> true

(* --- Contexts and entailment -------------------------------------- *)

type ctx = { facts : form list }

let empty = { facts = [] }

let neg_cmp : Expr.cmp -> Expr.cmp = function
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt
  | Eq -> Ne
  | Ne -> Eq

(* Constraints entailed by [a op b]; None when not expressible as a
   conjunction of linear inequalities (Ne) or when float-tainted. *)
let cmp_cstrs op (a : Expr.t) (b : Expr.t) : form list option =
  if unsafe a || unsafe b then None
  else
    let d = fsub (norm b) (norm a) in
    (* d = b - a *)
    match (op : Expr.cmp) with
    | Le -> Some [ d ]
    | Lt -> Some [ fadd d (fconst (-1)) ]
    | Ge -> Some [ fneg d ]
    | Gt -> Some [ fadd (fneg d) (fconst (-1)) ]
    | Eq -> Some [ d; fneg d ]
    | Ne -> None

let rec assume ctx (e : Expr.t) =
  match e with
  | Expr.And (a, b) -> assume (assume ctx a) b
  | Not (Cmp (op, a, b)) -> assume ctx (Expr.Cmp (neg_cmp op, a, b))
  | Cmp (op, a, b) -> (
      match cmp_cstrs op a b with
      | Some cs -> { facts = cs @ ctx.facts }
      | None -> ctx)
  | _ -> ctx

let assume_range ctx v ~lo ~hi =
  let ctx = assume ctx (Expr.Cmp (Le, lo, Expr.var v)) in
  assume ctx (Expr.Cmp (Lt, Expr.var v, hi))

let assume_loop ctx v extent = assume_range ctx v ~lo:(Expr.int 0) ~hi:extent

let infeasible_with ctx cs = infeasible_sys (List.rev_append cs ctx.facts)
let infeasible ctx = infeasible_sys ctx.facts

let rec prove ctx (e : Expr.t) : bool =
  match e with
  | Expr.Int_const n -> n <> 0
  | And (a, b) -> prove ctx a && prove ctx b
  | Or (a, b) -> prove ctx a || prove ctx b
  | Not a -> refute ctx a
  | Cmp (op, a, b) -> prove_cmp ctx op a b
  | _ -> false

and refute ctx (e : Expr.t) : bool =
  match e with
  | Expr.Int_const n -> n = 0
  | And (a, b) -> refute ctx a || refute ctx b
  | Or (a, b) -> refute ctx a && refute ctx b
  | Not a -> prove ctx a
  | Cmp (op, a, b) -> prove_cmp ctx (neg_cmp op) a b
  | _ -> false

and prove_cmp ctx op a b =
  match (op : Expr.cmp) with
  | Lt -> prove_le ctx (Expr.Binop (Add, a, Expr.int 1)) b
  | Le -> prove_le ctx a b
  | Gt -> prove_le ctx (Expr.Binop (Add, b, Expr.int 1)) a
  | Ge -> prove_le ctx b a
  | Eq -> prove_le ctx a b && prove_le ctx b a
  | Ne -> (
      match cmp_cstrs Eq a b with
      | Some cs -> infeasible_with ctx cs
      | None -> false)

(* a <= b.  Min/max get structural splits first (a min on the right
   of <= needs a conjunction, which FM on one-sided atom constraints
   cannot derive); the FM fallback proves the rest by refuting the
   negation a > b. *)
and prove_le ctx (a : Expr.t) (b : Expr.t) =
  (match b with
  | Expr.Binop (Min, p, q) -> prove_le ctx a p && prove_le ctx a q
  | _ -> false)
  || (match a with
     | Expr.Binop (Max, p, q) -> prove_le ctx p b && prove_le ctx q b
     | _ -> false)
  || (match b with
     | Expr.Binop (Max, p, q) -> prove_le ctx a p || prove_le ctx a q
     | _ -> false)
  || (match a with
     | Expr.Binop (Min, p, q) -> prove_le ctx p b || prove_le ctx q b
     | _ -> false)
  ||
  match cmp_cstrs Gt a b with
  | Some cs -> infeasible_with ctx cs
  | None -> false

let implies ctx (e : Expr.t) : tribool =
  if prove ctx e then True else if refute ctx e then False else Unknown

(* --- Constant bounds ---------------------------------------------- *)

(* Bounds of a form under the facts: pin a fresh objective atom to the
   form, eliminate everything else, read the surviving unit
   constraints on the objective. *)
let fm_bounds facts f : int option * int option =
  let obj = fatom Aobj in
  let sys = fsub f obj :: fsub obj f :: facts in
  try
    let final =
      fm_run
        ~keep:(fun a -> compare_atom a Aobj = 0)
        (normalize_sys (with_defs sys))
    in
    Form_set.fold
      (fun c (lo, hi) ->
        match c.terms with
        | [ (Aobj, k) ] when k > 0 ->
            (* k*t + const >= 0: t >= ceil(-const/k) *)
            let b = -fdiv_int c.const k in
            ( (match lo with Some l when l >= b -> lo | _ -> Some b),
              hi )
        | [ (Aobj, k) ] when k < 0 ->
            (* k*t + const >= 0: t <= floor(const/-k) *)
            let b = fdiv_int c.const (-k) in
            ( lo,
              match hi with Some h when h <= b -> hi | _ -> Some b )
        | _ -> (lo, hi))
      final (None, None)
  with Contradiction -> (None, None)

let opt_best pick a b =
  match (a, b) with
  | Some x, Some y -> Some (pick x y)
  | (Some _ as s), None | None, (Some _ as s) -> s
  | None, None -> None

let rec bounds ctx (e : Expr.t) : int option * int option =
  match e with
  | Expr.Int_const n -> (Some n, Some n)
  | Binop (Min, a, b) ->
      let la, ha = bounds ctx a and lb, hb = bounds ctx b in
      let s_lo =
        match (la, lb) with Some x, Some y -> Some (min x y) | _ -> None
      in
      let s_hi = opt_best min ha hb in
      let f_lo, f_hi = fm_of ctx e in
      (opt_best max s_lo f_lo, opt_best min s_hi f_hi)
  | Binop (Max, a, b) ->
      let la, ha = bounds ctx a and lb, hb = bounds ctx b in
      let s_lo = opt_best max la lb in
      let s_hi =
        match (ha, hb) with Some x, Some y -> Some (max x y) | _ -> None
      in
      let f_lo, f_hi = fm_of ctx e in
      (opt_best max s_lo f_lo, opt_best min s_hi f_hi)
  | _ -> fm_of ctx e

and fm_of ctx e = if unsafe e then (None, None) else fm_bounds ctx.facts (norm e)

let bound_range ctx e =
  match bounds ctx e with
  | Some lo, Some hi when lo <= hi -> Some (lo, hi)
  | _ -> None

let lower_bound ctx e = fst (bounds ctx e)
let upper_bound ctx e = snd (bounds ctx e)

(* --- Back to expressions ------------------------------------------ *)

let rec atom_expr = function
  | Avar v -> Expr.var v
  | Adiv (f, c) -> Expr.Binop (Div, to_expr f, Expr.int c)
  | Amin (f, g) -> Expr.Binop (Min, to_expr f, to_expr g)
  | Amax (f, g) -> Expr.Binop (Max, to_expr f, to_expr g)
  | Aopaque e -> e
  | Aobj -> assert false

and to_expr (f : form) : Expr.t =
  let term (a, c) =
    let ea = atom_expr a in
    if abs c = 1 then (ea, c < 0)
    else (Expr.Binop (Mul, ea, Expr.int (abs c)), c < 0)
  in
  let acc =
    List.fold_left
      (fun acc t ->
        let e, negated = term t in
        match acc with
        | None ->
            Some (if negated then Expr.Binop (Sub, Expr.int 0, e) else e)
        | Some acc ->
            Some
              (if negated then Expr.Binop (Sub, acc, e)
               else Expr.Binop (Add, acc, e)))
      None f.terms
  in
  match acc with
  | None -> Expr.int f.const
  | Some acc ->
      if f.const = 0 then acc
      else if f.const > 0 then Expr.Binop (Add, acc, Expr.int f.const)
      else Expr.Binop (Sub, acc, Expr.int (-f.const))

(* --- Upper bound on a loop variable from a guard ------------------- *)

let rec atom_has_var v = function
  | Avar v' -> Var.equal v v'
  | Adiv (f, _) -> form_has_var v f
  | Amin (f, g) | Amax (f, g) -> form_has_var v f || form_has_var v g
  | Aopaque e -> Var.Set.mem v (Expr.free_vars e)
  | Aobj -> false

and form_has_var v f = List.exists (fun (a, _) -> atom_has_var v a) f.terms

let cond_upper_bound v (cond : Expr.t) : (Expr.t * bool) option =
  match cond with
  | Expr.Cmp (op, a, b) when (not (unsafe a)) && not (unsafe b) -> (
      let d = fsub (norm b) (norm a) in
      (* For op in {Le,Lt,Ge,Gt}: cond ⟺ f >= 0 for the matching f.
         Write f = c*v + g with g free of v; when c < 0,
         f >= 0 ⟺ v <= floor(g / -c) ⟺ v < floor(g / -c) + 1. *)
      let pick f =
        let c = coeff_of (Avar v) f in
        if c >= 0 then None
        else
          let g =
            { terms =
                List.filter
                  (fun (x, _) -> compare_atom x (Avar v) <> 0)
                  f.terms;
              const = f.const }
          in
          if form_has_var v g then None
          else
            Some (Simplify.expr (to_expr (fadd (fdiv_form g (-c)) (fconst 1))))
      in
      match op with
      | Le -> Option.map (fun e -> (e, true)) (pick d)
      | Lt -> Option.map (fun e -> (e, true)) (pick (fadd d (fconst (-1))))
      | Ge -> Option.map (fun e -> (e, true)) (pick (fneg d))
      | Gt ->
          Option.map (fun e -> (e, true)) (pick (fadd (fneg d) (fconst (-1))))
      | Eq -> (
          (* v = b bounds v above (inexactly: the guard must stay). *)
          match pick d with
          | Some e -> Some (e, false)
          | None -> Option.map (fun e -> (e, false)) (pick (fneg d)))
      | Ne -> None)
  | _ -> None

(* --- structural condition helpers ------------------------------------ *)

(* Shared with the legacy pass stack via the [Analysis] compatibility
   shim: splitting and rebuilding conjunctions, and the load screen
   that keeps effectful conditions out of any rewrite. *)

let rec conjuncts = function
  | Expr.And (a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let conjoin = function
  | [] -> Expr.int 1
  | c :: rest -> List.fold_left Expr.and_ c rest

let rec contains_load (e : Expr.t) =
  match e with
  | Load _ -> true
  | Int_const _ | Float_const _ | Var _ -> false
  | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
      contains_load a || contains_load b
  | Not a | Cast (_, a) -> contains_load a
  | Select (c, t, f) -> contains_load c || contains_load t || contains_load f
