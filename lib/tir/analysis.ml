(* Pre-affine bound analysis, kept as a compatibility shim: the legacy
   pass stack (Pipeline.config with [affine = false]) must stay
   bit-identical to the committed golden traces, so the syntactic
   matchers below are frozen verbatim.  The structural helpers are
   delegated to [Affine], which is the bounds oracle for everything
   new (affine pass drivers, guard-free lowering, verifier
   footprints). *)

let is_free_of v e = not (Var.Set.mem v (Expr.free_vars e))

let rec linear_in v (e : Expr.t) : (int * Expr.t) option =
  let ( let* ) = Option.bind in
  if is_free_of v e then Some (0, e)
  else
    match e with
    | Var v' when Var.equal v v' -> Some (1, Expr.int 0)
    | Binop (Add, a, b) ->
        let* ca, ra = linear_in v a in
        let* cb, rb = linear_in v b in
        Some (ca + cb, Expr.(ra + rb))
    | Binop (Sub, a, b) ->
        let* ca, ra = linear_in v a in
        let* cb, rb = linear_in v b in
        Some (ca - cb, Expr.(ra - rb))
    | Binop (Mul, a, b) -> (
        match (a, b) with
        | Expr.Int_const k, other | other, Expr.Int_const k ->
            let* c, r = linear_in v other in
            Some (c * k, Expr.(r * int k))
        | _, _ -> None)
    | Var _ | Int_const _ | Float_const _ | Binop _ | Cmp _ | And _ | Or _
    | Not _ | Select _ | Load _ | Cast _ ->
        None

let stride_in v e = Option.map fst (linear_in v e)

(* ceil(-r / c) as an expression, for positive constant c. *)
let ceil_div_neg r c =
  let num = Expr.( + ) (Expr.( - ) (Expr.int 0) r) (Expr.int (Stdlib.( - ) c 1)) in
  Simplify.expr (Expr.Binop (Div, num, Expr.int c))

let floor_div_neg r c =
  Simplify.expr (Expr.Binop (Div, Expr.( - ) (Expr.int 0) r, Expr.int c))

let upper_bound_from_cond v (cond : Expr.t) : Expr.t option =
  match cond with
  | Cmp (op, lhs, rhs) -> (
      (* Canonicalize to c*v + r OP 0. *)
      match linear_in v Expr.(lhs - rhs) with
      | None | Some (0, _) -> None
      | Some (c, r) -> (
          let r = Simplify.expr r in
          match (op, c > 0) with
          (* c*v + r < 0  ⟺  v < ceil(-r/c) when c > 0. *)
          | (Expr.Lt, true) -> Some (ceil_div_neg r c)
          (* c*v + r <= 0 ⟺  v < floor(-r/c) + 1. *)
          | (Expr.Le, true) -> Some (Simplify.expr Expr.(floor_div_neg r c + int 1))
          (* c*v + r > 0 with c < 0 ⟺ (-c)*v - r < 0 ⟺ v < ceil(r/-c). *)
          | (Expr.Gt, false) -> Some (ceil_div_neg (Simplify.expr Expr.(int 0 - r)) (-c))
          | (Expr.Ge, false) ->
              Some
                (Simplify.expr
                   Expr.(floor_div_neg (Simplify.expr Expr.(int 0 - r)) (-c) + int 1))
          | (Expr.Lt, false)
          | (Expr.Le, false)
          | (Expr.Gt, true)
          | (Expr.Ge, true)
          | ((Expr.Eq | Expr.Ne), _) ->
              None))
  | Int_const _ | Float_const _ | Var _ | Binop _ | And _ | Or _ | Not _
  | Select _ | Load _ | Cast _ ->
      None

let conjuncts = Affine.conjuncts
let conjoin = Affine.conjoin
let contains_load = Affine.contains_load
