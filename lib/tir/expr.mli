(** TIR expressions.

    Index expressions are integer-typed; element expressions carry the
    dtype of the tensors they flow through.  [Div] and [Mod] follow
    floor semantics on non-negative operands, which is all the lowering
    generates. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div  (** integer: floor division; float: true division. *)
  | Mod
  | Min
  | Max

type cmp = Lt | Le | Gt | Ge | Eq | Ne

type t =
  | Int_const of int
  | Float_const of float
  | Var of Var.t
  | Binop of binop * t * t
  | Cmp of cmp * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Select of t * t * t  (** [Select (cond, then_, else_)]. *)
  | Load of string * t  (** buffer name, flat element offset. *)
  | Cast of Imtp_tensor.Dtype.t * t
      (** Dtype conversion with pinned semantics shared by the
          interpreter ({!Eval}), the compiled executor ({!Exec}) and
          the C emitted by {!Codegen_c} (as compiled on a saturating
          target such as AArch64):

          - to [F32]: round to the nearest representable float32;
          - to [I8]/[I32] from an integer: wrap (C truncation);
          - to [I8]/[I32] from a float: truncate toward zero,
            saturating to the signed 32-bit range, NaN becoming 0
            ({!Imtp_tensor.Dtype.int_of_f32}); an [I8] cast wraps that
            32-bit result to 8 bits. *)

(* Construction helpers. *)
val int : int -> t
val float : float -> t
val var : Var.t -> t
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( % ) : t -> t -> t
val min_e : t -> t -> t
val max_e : t -> t -> t
val ( < ) : t -> t -> t
val ( <= ) : t -> t -> t
val ( > ) : t -> t -> t
val ( >= ) : t -> t -> t
val ( = ) : t -> t -> t
val ( <> ) : t -> t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val not_ : t -> t
val load : string -> t -> t

val equal : t -> t -> bool
(** Structural equality. *)

val free_vars : t -> Var.Set.t
val is_const : t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
