module U = Imtp_upmem
module T = Imtp_tensor

exception Error of string

let err fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

(* --- expression summaries ------------------------------------------ *)

(* Dtype of a value expression, given buffer dtypes. *)
let rec expr_dtype dts (e : Expr.t) : T.Dtype.t =
  match e with
  | Float_const _ -> T.Dtype.F32
  | Int_const _ | Var _ -> T.Dtype.I32
  | Cast (dt, _) -> dt
  | Load (buf, _) -> (
      match Hashtbl.find_opt dts buf with Some dt -> dt | None -> T.Dtype.I32)
  | Binop (_, a, b) | Select (_, a, b) -> (
      match (expr_dtype dts a, expr_dtype dts b) with
      | T.Dtype.F32, _ | _, T.Dtype.F32 -> T.Dtype.F32
      | T.Dtype.I8, T.Dtype.I8 -> T.Dtype.I8
      | (T.Dtype.I8 | T.Dtype.I32), (T.Dtype.I8 | T.Dtype.I32) -> T.Dtype.I32)
  | Cmp _ | And _ | Or _ | Not _ -> T.Dtype.I32

let index_slots idx =
  U.Timing.address_calc_slots ~terms:(Var.Set.cardinal (Expr.free_vars idx))

let timing_binop : Expr.binop -> U.Timing.binop = function
  | Add -> U.Timing.Add
  | Sub -> U.Timing.Sub
  | Mul -> U.Timing.Mul
  | Div | Mod -> U.Timing.Div
  | Min -> U.Timing.Min
  | Max -> U.Timing.Max

(* Issue slots to evaluate [e] on a DPU.  [dts] maps buffer names to
   dtypes; [scopes] maps buffer names to scopes (for the WRAM vs direct
   MRAM access cost split). *)
let rec value_slots dts scopes (e : Expr.t) : float =
  match e with
  | Int_const _ | Float_const _ | Var _ -> 0.
  | Binop (Mul, a, b)
    when Stdlib.( = ) (expr_dtype dts e) T.Dtype.I32
         && (Expr.is_const a || Expr.is_const b) ->
      (* multiply-by-constant in index/guard arithmetic is
         strength-reduced to shifts/adds by the backend compiler. *)
      1. +. value_slots dts scopes a +. value_slots dts scopes b
  | Binop (op, a, b) ->
      U.Timing.binop_slots (expr_dtype dts e) (timing_binop op)
      +. value_slots dts scopes a +. value_slots dts scopes b
  | Cmp (_, a, b) -> 1. +. value_slots dts scopes a +. value_slots dts scopes b
  | And (a, b) | Or (a, b) ->
      1. +. value_slots dts scopes a +. value_slots dts scopes b
  | Not a -> 1. +. value_slots dts scopes a
  | Select (c, a, b) ->
      1. +. value_slots dts scopes c +. value_slots dts scopes a
      +. value_slots dts scopes b
  | Load (buf, idx) ->
      (* the index arithmetic is charged once via the address-calc
         estimate, not re-counted operation by operation. *)
      let access =
        match Hashtbl.find_opt scopes buf with
        | Some Buffer.Wram | None -> U.Timing.wram_access_slots
        | Some Buffer.Mram -> U.Timing.mram_scalar_access_slots
        | Some Buffer.Host -> U.Timing.wram_access_slots
      in
      access +. index_slots idx
  | Cast (_, a) -> 1. +. value_slots dts scopes a

(* Host-CPU scalar operation count of an expression. *)
let rec host_ops (e : Expr.t) : float =
  match e with
  | Int_const _ | Float_const _ | Var _ -> 0.
  | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
      1. +. host_ops a +. host_ops b
  | Not a | Cast (_, a) -> 1. +. host_ops a
  | Select (c, a, b) -> 1. +. host_ops c +. host_ops a +. host_ops b
  | Load (_, idx) -> 1. +. host_ops idx

let rec host_load_count (e : Expr.t) : float =
  match e with
  | Int_const _ | Float_const _ | Var _ -> 0.
  | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
      host_load_count a +. host_load_count b
  | Not a | Cast (_, a) -> host_load_count a
  | Select (c, a, b) -> host_load_count c +. host_load_count a +. host_load_count b
  | Load (_, idx) -> 1. +. host_load_count idx

(* --- static evaluation helpers -------------------------------------- *)

(* Evaluate a loop extent under the interior assumption: every
   already-bound loop variable is 0 (tile 0 has the full extent). *)
let extent_int env e =
  match Simplify.eval_int env e with
  | Some n -> n
  | None -> err "non-constant loop extent: %s" (Expr.to_string e)

(* --- kernel profile -------------------------------------------------- *)

type kacc = {
  dts : (string, T.Dtype.t) Hashtbl.t;
  scopes : (string, Buffer.scope) Hashtbl.t;
  mutable slots : float;  (* per-tasklet compute issue slots *)
  mutable dmas : (int * float) list;  (* bytes, executions per tasklet *)
  mutable chunk_execs : float;  (* executions of most frequent DMA site *)
  mutable tasklets : int;
}

let register_buffers (p : Program.t) acc =
  let reg (b : Buffer.t) =
    Hashtbl.replace acc.dts b.name b.dtype;
    Hashtbl.replace acc.scopes b.name b.scope
  in
  List.iter reg p.host_buffers;
  List.iter reg p.mram_buffers

let dma_init_slots elems = if Expr.is_const elems then 2. else 8.

let kernel_profile cfg (p : Program.t) (k : Program.kernel) =
  let acc =
    {
      dts = Hashtbl.create 16;
      scopes = Hashtbl.create 16;
      slots = 0.;
      dmas = [];
      chunk_execs = 1.;
      tasklets = 1;
    }
  in
  register_buffers p acc;
  (* Pre-register WRAM allocations so dtypes resolve anywhere. *)
  Stmt.iter
    (function
      | Stmt.Alloc { buffer; _ } ->
          Hashtbl.replace acc.dts buffer.Buffer.name buffer.Buffer.dtype;
          Hashtbl.replace acc.scopes buffer.Buffer.name buffer.Buffer.scope
      | Stmt.Seq _ | Stmt.For _ | Stmt.If _ | Stmt.Store _ | Stmt.Dma _
      | Stmt.Xfer _ | Stmt.Launch _ | Stmt.Barrier | Stmt.Nop ->
          ())
    k.body;
  let vslots e = value_slots acc.dts acc.scopes e in
  let rec walk mult env (s : Stmt.t) =
    match s with
    | Nop -> ()
    | Barrier -> acc.slots <- acc.slots +. (32. *. mult)
    | Seq ss -> List.iter (walk mult env) ss
    | Alloc { body; _ } -> walk mult env body
    | For { var; extent = _; kind = Bound (Block_x | Block_y | Block_z); body } ->
        (* per-DPU accounting: do not multiply. *)
        walk mult (Var.Map.add var 0 env) body
    | For { var; extent; kind = Bound Thread_x; body } ->
        acc.tasklets <- acc.tasklets * extent_int env extent;
        walk mult (Var.Map.add var 0 env) body
    | For { var; extent; kind = Unrolled; body } ->
        let n = extent_int env extent in
        walk (mult *. float_of_int n) (Var.Map.add var 0 env) body
    | For { var; extent; kind = Serial | Host_parallel _; body } ->
        let n = extent_int env extent in
        acc.slots <-
          acc.slots +. (mult *. float_of_int n *. U.Timing.loop_overhead_slots);
        walk (mult *. float_of_int n) (Var.Map.add var 0 env) body
    | If { cond; then_; else_ = _ } ->
        acc.slots <-
          acc.slots
          +. (mult *. (U.Timing.branch_slots cfg ~tasklets:acc.tasklets +. vslots cond));
        walk mult env then_
    | Store { buf; index; value } ->
        let access =
          match Hashtbl.find_opt acc.scopes buf with
          | Some Buffer.Mram -> U.Timing.mram_scalar_access_slots
          | Some (Buffer.Wram | Buffer.Host) | None -> U.Timing.wram_access_slots
        in
        acc.slots <-
          acc.slots +. (mult *. (access +. index_slots index +. vslots value))
    | Dma { wram; elems; dir = _; wram_off = _; mram = _; mram_off = _ } ->
        let n = extent_int env elems in
        let esize =
          match Hashtbl.find_opt acc.dts wram with
          | Some dt -> T.Dtype.size_in_bytes dt
          | None -> 4
        in
        acc.slots <- acc.slots +. (mult *. dma_init_slots elems);
        acc.dmas <- (n * esize, mult) :: acc.dmas;
        if mult > acc.chunk_execs then acc.chunk_execs <- mult
    | Xfer _ -> err "Xfer inside kernel %s" k.kname
    | Launch _ -> err "Launch inside kernel %s" k.kname
  in
  walk 1. Var.Map.empty k.body;
  let chunks_per_tasklet = Float.max 1. acc.chunk_execs in
  let dma_bytes =
    List.map (fun (b, execs) -> (b, execs /. chunks_per_tasklet)) acc.dmas
  in
  {
    U.Dpu_model.tasklets = acc.tasklets;
    chunks =
      int_of_float (Float.round (chunks_per_tasklet *. float_of_int acc.tasklets));
    dma_bytes;
    compute_slots = acc.slots /. chunks_per_tasklet;
    prologue_slots = 64.;
    epilogue_slots = 64.;
  }

let kernel_cycles cfg p k = U.Dpu_model.kernel_cycles cfg (kernel_profile cfg p k)

(* --- exact DMA counting ---------------------------------------------- *)

type dma_counts = { dma_ops : int; dma_elems : int }

(* Exact dynamic DMA traffic by full loop enumeration, the analytic
   twin of the [Eval.run_counted] counters.  Unlike the timing walk
   above there is no interior-DPU approximation: block and thread
   loops are enumerated and guards are evaluated, so the count matches
   what the interpreter actually executes. *)
let dma_counts (p : Program.t) =
  let ops = ref 0 and elems = ref 0 in
  let budget = ref 50_000_000 in
  let spend () =
    decr budget;
    if !budget <= 0 then err "dma_counts: enumeration exceeds node budget"
  in
  let rec walk env (s : Stmt.t) =
    spend ();
    match s with
    | Nop | Barrier | Store _ | Xfer _ -> ()
    | Seq ss -> List.iter (walk env) ss
    | Alloc { body; _ } -> walk env body
    | For { var; extent; kind = _; body } ->
        let n = max 0 (extent_int env extent) in
        for i = 0 to n - 1 do
          walk (Var.Map.add var i env) body
        done
    | If { cond; then_; else_ } -> (
        match Simplify.eval_int env cond with
        | Some 0 -> Option.iter (walk env) else_
        | Some _ -> walk env then_
        | None -> err "dma_counts: undecidable guard %s" (Expr.to_string cond))
    | Dma { elems = e; _ } ->
        (* mirror [Eval]: the op and its element count are recorded
           unconditionally once the instruction issues. *)
        incr ops;
        elems := !elems + extent_int env e
    | Launch kname -> (
        match Program.kernel_of p kname with
        | Some k -> walk env k.body
        | None -> err "dma_counts: launch of unknown kernel %s" kname)
  in
  walk Var.Map.empty p.host;
  { dma_ops = !ops; dma_elems = !elems }

(* Analytic DMA traffic: loop extents multiply instead of being
   enumerated, guards are assumed taken (an [If] charges the heavier
   branch, as the timing walk does), and variable-length transfers are
   resolved with every enclosing loop variable at 0.  An interior-DPU
   upper bound, cheap enough to run on every search candidate — the
   feature-extraction twin of the exact [dma_counts] above. *)
let dma_estimate (p : Program.t) =
  let rec walk mult env (s : Stmt.t) : float * float =
    match s with
    | Stmt.Nop | Stmt.Barrier | Stmt.Store _ | Stmt.Xfer _ -> (0., 0.)
    | Stmt.Seq ss ->
        List.fold_left
          (fun (o, e) s ->
            let o', e' = walk mult env s in
            (o +. o', e +. e'))
          (0., 0.) ss
    | Stmt.Alloc { body; _ } -> walk mult env body
    | Stmt.For { var; extent; kind = _; body } ->
        let n =
          match Simplify.eval_int env extent with Some n -> max 0 n | None -> 1
        in
        walk (mult *. float_of_int n) (Var.Map.add var 0 env) body
    | Stmt.If { cond = _; then_; else_ } ->
        let o_t, e_t = walk mult env then_ in
        let o_e, e_e =
          match else_ with None -> (0., 0.) | Some s -> walk mult env s
        in
        (Float.max o_t o_e, Float.max e_t e_e)
    | Stmt.Dma { elems = e; _ } ->
        let n =
          match Simplify.eval_int env e with Some n -> max 0 n | None -> 1
        in
        (mult, mult *. float_of_int n)
    | Stmt.Launch kname -> (
        match Program.kernel_of p kname with
        | Some k -> walk mult env k.body
        | None -> (0., 0.))
  in
  let ops, elems = walk 1. Var.Map.empty p.host in
  let clamp x =
    if x >= float_of_int max_int then max_int else int_of_float x
  in
  { dma_ops = clamp ops; dma_elems = clamp elems }

(* --- host walk -------------------------------------------------------- *)

type hacc = {
  mutable h2d : float;
  mutable d2h : float;
  mutable launch : float;
  mutable kernel : float;
  mutable host_ops : float;
  mutable host_bytes : float;
  mutable host_par_s : float;
  mutable bytes_h2d : float;
  mutable bytes_d2h : float;
}

(* (ops, bytes) per single execution of a host statement. *)
let rec host_body_cost env (s : Stmt.t) : float * float =
  match s with
  | Nop | Barrier | Launch _ | Dma _ | Xfer _ -> (0., 0.)
  | Seq ss ->
      List.fold_left
        (fun (o, b) s ->
          let o', b' = host_body_cost env s in
          (o +. o', b +. b'))
        (0., 0.) ss
  | Alloc { body; _ } -> host_body_cost env body
  | For { var; extent; body; kind = _ } ->
      let n =
        match Simplify.eval_int env extent with Some n -> n | None -> 1
      in
      let o, b = host_body_cost (Var.Map.add var 0 env) body in
      (float_of_int n *. (o +. 2.), float_of_int n *. b)
  | If { cond; then_; else_ } ->
      (* A boundary If executes exactly one branch; charge the more
         expensive of the two rather than silently dropping [else_]. *)
      let o_t, b_t = host_body_cost env then_ in
      let o_e, b_e =
        match else_ with
        | None -> (0., 0.)
        | Some s -> host_body_cost env s
      in
      (Float.max o_t o_e +. host_ops cond, Float.max b_t b_e)
  | Store { index; value; buf = _ } ->
      let loads = host_load_count value +. host_load_count index in
      (1. +. host_ops value +. host_ops index, 4. *. (loads +. 1.))

let elem_bytes (p : Program.t) name elems =
  let esize =
    match Program.buffer_of p name with
    | Some b -> T.Dtype.size_in_bytes b.Buffer.dtype
    | None -> 4
  in
  elems * esize

let measure cfg (p : Program.t) : U.Stats.t =
  (match Program.validate p with Ok () -> () | Error m -> err "%s" m);
  let acc =
    {
      h2d = 0.;
      d2h = 0.;
      launch = 0.;
      kernel = 0.;
      host_ops = 0.;
      host_bytes = 0.;
      host_par_s = 0.;
      bytes_h2d = 0.;
      bytes_d2h = 0.;
    }
  in
  let kernel_seconds = Hashtbl.create 4 in
  List.iter
    (fun (k : Program.kernel) ->
      Hashtbl.replace kernel_seconds k.kname
        (U.Config.seconds_of_cycles cfg (kernel_cycles cfg p k)))
    p.kernels;
  let rec walk mult env (s : Stmt.t) =
    match s with
    | Nop | Barrier | Dma _ -> ()
    | Seq ss -> List.iter (walk mult env) ss
    | Alloc { body; _ } -> walk mult env body
    | For { var; extent; kind = Host_parallel threads; body } ->
        let n = extent_int env extent in
        let ops, bytes = host_body_cost (Var.Map.add var 0 env) body in
        acc.host_par_s <-
          acc.host_par_s
          +. mult
             *. U.Host_model.loop_seconds cfg ~threads ~elems:n
                  ~ops_per_elem:(ops +. 2.) ~bytes_per_elem:bytes
    | For { var; extent; body; kind = Serial | Unrolled | Bound _ } ->
        let n = extent_int env extent in
        (* A host loop body containing only transfers costs no host
           compute; otherwise charge serial scalar work. *)
        if
          not
            (Stmt.exists
               (function
                 | Stmt.Xfer _ | Stmt.Launch _ -> true
                 | Stmt.Seq _ | Stmt.For _ | Stmt.If _ | Stmt.Store _
                 | Stmt.Alloc _ | Stmt.Dma _ | Stmt.Barrier | Stmt.Nop -> false)
               body)
        then begin
          let ops, bytes = host_body_cost (Var.Map.add var 0 env) body in
          acc.host_ops <- acc.host_ops +. (mult *. float_of_int n *. (ops +. 2.));
          acc.host_bytes <- acc.host_bytes +. (mult *. float_of_int n *. bytes)
        end
        else walk (mult *. float_of_int n) (Var.Map.add var 0 env) body
    | If { cond = _; then_; else_ = None } -> walk mult env then_
    | If { cond = _; then_; else_ = Some els } ->
        (* One branch executes; charge the componentwise max of the two
           branch contributions (the walk mutates [acc], so each branch
           is measured as a delta against a snapshot). *)
        let snapshot () =
          [|
            acc.h2d; acc.d2h; acc.launch; acc.kernel; acc.host_ops;
            acc.host_bytes; acc.host_par_s; acc.bytes_h2d; acc.bytes_d2h;
          |]
        in
        let restore v =
          acc.h2d <- v.(0);
          acc.d2h <- v.(1);
          acc.launch <- v.(2);
          acc.kernel <- v.(3);
          acc.host_ops <- v.(4);
          acc.host_bytes <- v.(5);
          acc.host_par_s <- v.(6);
          acc.bytes_h2d <- v.(7);
          acc.bytes_d2h <- v.(8)
        in
        let base = snapshot () in
        walk mult env then_;
        let with_then = snapshot () in
        restore base;
        walk mult env els;
        let with_else = snapshot () in
        let merged =
          Array.mapi
            (fun i b -> b +. Float.max (with_then.(i) -. b) (with_else.(i) -. b))
            base
        in
        restore merged
    | Store { buf = _; index; value } ->
        acc.host_ops <-
          acc.host_ops +. (mult *. (1. +. host_ops value +. host_ops index));
        acc.host_bytes <-
          acc.host_bytes
          +. (mult
              *. 4.
              *. (host_load_count value +. host_load_count index +. 1.))
    | Launch kname ->
        acc.launch <- acc.launch +. (mult *. cfg.U.Config.kernel_launch_overhead_s);
        acc.kernel <- acc.kernel +. (mult *. Hashtbl.find kernel_seconds kname)
    | Xfer { dir; mode; host; host_off = _; dpu = _; mram = _; mram_off = _; elems; group_dpus } -> (
        let n = extent_int env elems in
        let bytes = elem_bytes p host n in
        let tdir =
          match dir with To_dpu -> U.Transfer.H2d | From_dpu -> U.Transfer.D2h
        in
        let record_bytes total =
          match dir with
          | To_dpu -> acc.bytes_h2d <- acc.bytes_h2d +. total
          | From_dpu -> acc.bytes_d2h <- acc.bytes_d2h +. total
        in
        match mode with
        | Copy ->
            let s = U.Transfer.seconds cfg tdir U.Transfer.Serial ~ndpus:1 ~bytes_per_dpu:bytes in
            record_bytes (mult *. float_of_int bytes);
            let t = mult *. s in
            if dir = To_dpu then acc.h2d <- acc.h2d +. t else acc.d2h <- acc.d2h +. t
        | Push ->
            let g = max 1 group_dpus in
            (* A partial group still costs one full per-call transfer
               overhead: round the call count up. *)
            let calls = Float.max 1. (Float.ceil (mult /. float_of_int g)) in
            let s =
              U.Transfer.seconds cfg tdir U.Transfer.Bank_parallel
                ~ndpus:(min g (int_of_float (Float.max 1. mult)))
                ~bytes_per_dpu:bytes
            in
            record_bytes (mult *. float_of_int bytes);
            let t = calls *. s in
            if dir = To_dpu then acc.h2d <- acc.h2d +. t else acc.d2h <- acc.d2h +. t
        | Broadcast_x ->
            let g = max 1 group_dpus in
            let calls = Float.max 1. (Float.ceil (mult /. float_of_int g)) in
            let s = U.Transfer.broadcast_seconds cfg ~ndpus:g ~bytes in
            record_bytes (float_of_int (g * bytes) *. calls);
            acc.h2d <- acc.h2d +. (calls *. s))
  in
  walk 1. Var.Map.empty p.host;
  let host_serial_s =
    (acc.host_ops /. cfg.U.Config.host_ops_per_s)
    +. (acc.host_bytes /. cfg.U.Config.host_mem_bw)
  in
  {
    U.Stats.h2d_s = acc.h2d;
    kernel_s = acc.kernel;
    d2h_s = acc.d2h;
    host_s = host_serial_s +. acc.host_par_s;
    launch_s = acc.launch;
    bytes_h2d = int_of_float acc.bytes_h2d;
    bytes_d2h = int_of_float acc.bytes_d2h;
    dpus_used = Program.dpus_used p;
    tasklets_used = Program.tasklets_used p;
  }
