module Op = Imtp_workload.Op
module T = Imtp_tensor

type config = {
  channels : int;
  units_per_channel : int;
  simd_lanes : int;
  freq_hz : float;
  cycles_per_command : float;
  row_activate_cycles : float;
  cols_per_row : int;
  host_bw : float;
  mode_switch_s : float;
}

let default_config =
  {
    channels = 16;
    units_per_channel = 8;
    simd_lanes = 16;
    freq_hz = 1.2e9;
    cycles_per_command = 2.;
    row_activate_cycles = 40.;
    cols_per_row = 32;
    host_bw = 12e9;
    mode_switch_s = 2e-6;
  }

let total_units c = c.channels * c.units_per_channel

type family = Ew | Mv

type program = {
  cfg : config;
  op : Op.t;
  family : family;
  punits : int;  (** units actually carrying work. *)
  vectors_per_unit : int;  (** SIMD vectors processed per unit. *)
  cmds_per_unit : int;  (** column commands per unit. *)
  row_activations : int;
  bytes_io : int;
}

let ceil_div a b = (a + b - 1) / b

let supported (op : Op.t) =
  match
    (List.length (Op.spatial_axes op), List.length (Op.reduction_axes op))
  with
  | 1, 0 | 1, 1 -> true
  | _, _ -> false

let io_bytes (op : Op.t) =
  let esize = Imtp_tensor.Dtype.size_in_bytes op.Op.dtype in
  let input_bytes =
    List.fold_left
      (fun acc (t, _) ->
        acc + (List.fold_left ( * ) 1 (Op.input_shape op t) * esize))
      0 op.Op.inputs
  in
  input_bytes + (Op.output_elems op * esize)

let compile cfg (op : Op.t) =
  if not (supported op) then
    Error
      (Printf.sprintf
         "HBM-PIM prototype supports elementwise and matrix-vector families \
          only (got %s)"
         op.Op.opname)
  else begin
    let units = total_units cfg in
    match Op.reduction_axes op with
    | [] ->
        (* elementwise: elements striped across units and lanes; per
           SIMD vector: one MAC-style command per input plus a
           write-back. *)
        let n = (List.hd op.Op.axes).Op.extent in
        let vectors = ceil_div n cfg.simd_lanes in
        let punits = min units vectors in
        let vectors_per_unit = ceil_div vectors punits in
        let per_vector_cmds = List.length op.Op.inputs + 1 in
        Ok
          {
            cfg;
            op;
            family = Ew;
            punits;
            vectors_per_unit;
            cmds_per_unit = vectors_per_unit * per_vector_cmds;
            row_activations = ceil_div vectors_per_unit cfg.cols_per_row;
            bytes_io = io_bytes op;
          }
    | _ :: _ ->
        (* matrix-vector: rows interleaved across units (the vendor
           GEMV layout); per row, k/lanes MAC commands accumulate into
           the unit accumulator, plus one readout command per row. *)
        let n = (List.hd (Op.spatial_axes op)).Op.extent in
        let k = (List.hd (Op.reduction_axes op)).Op.extent in
        let punits = min units n in
        let rows_per_unit = ceil_div n punits in
        let macs_per_row = ceil_div k cfg.simd_lanes in
        let vectors_per_unit = rows_per_unit * macs_per_row in
        Ok
          {
            cfg;
            op;
            family = Mv;
            punits;
            vectors_per_unit;
            cmds_per_unit = vectors_per_unit + rows_per_unit;
            row_activations = ceil_div vectors_per_unit cfg.cols_per_row;
            bytes_io = io_bytes op;
          }
  end

let describe p =
  Printf.sprintf
    "%s on HBM-PIM: %d units, %d SIMD vectors/unit, %d commands/unit, %d row \
     activations, %d KB host I/O"
    p.op.Op.opname p.punits p.vectors_per_unit p.cmds_per_unit
    p.row_activations (p.bytes_io / 1024)

(* --- functional execution --------------------------------------------- *)

exception Exec_error of string

let find_input inputs name =
  match List.assoc_opt name inputs with
  | Some t -> t
  | None -> raise (Exec_error (Printf.sprintf "missing input %s" name))

let rec eval_elem (op : Op.t) inputs point (e : Op.elem) =
  match e with
  | Op.Const v -> v
  | Op.Ref name ->
      let dims = List.assoc name op.Op.inputs in
      let idx = Array.of_list (List.map (fun d -> List.assoc d point) dims) in
      T.Tensor.get (find_input inputs name) idx
  | Op.Acc -> raise (Exec_error "epilogue Acc outside a fused graph kernel")
  | Op.Bin (b, x, y) ->
      let vx = eval_elem op inputs point x and vy = eval_elem op inputs point y in
      Op.value_bin b vx vy

let execute p inputs =
  let op = p.op in
  let lanes = p.cfg.simd_lanes in
  match p.family with
  | Ew ->
      let axis = List.hd op.Op.axes in
      let n = axis.Op.extent in
      let out = T.Tensor.create op.Op.dtype (T.Shape.create [ n ]) in
      (* element e is processed by unit (e / lanes mod punits), lane
         (e mod lanes) — iterate in that order to mirror the hardware. *)
      for u = 0 to p.punits - 1 do
        for v = 0 to p.vectors_per_unit - 1 do
          for lane = 0 to lanes - 1 do
            let vec = (v * p.punits) + u in
            let e = (vec * lanes) + lane in
            if e < n then begin
              let value = eval_elem op inputs [ (axis.Op.aname, e) ] op.Op.body in
              T.Tensor.set_flat out e value
            end
          done
        done
      done;
      out
  | Mv ->
      let sa = List.hd (Op.spatial_axes op) and ra = List.hd (Op.reduction_axes op) in
      let n = sa.Op.extent and k = ra.Op.extent in
      let out = T.Tensor.create op.Op.dtype (T.Shape.create [ n ]) in
      for u = 0 to p.punits - 1 do
        let rows_per_unit = ceil_div n p.punits in
        for r = 0 to rows_per_unit - 1 do
          (* row-interleaved layout across units. *)
          let row = (r * p.punits) + u in
          if row < n then begin
            let acc = ref (T.Value.zero op.Op.dtype) in
            for j = 0 to k - 1 do
              let point = [ (sa.Op.aname, row); (ra.Op.aname, j) ] in
              acc := T.Value.add !acc (eval_elem op inputs point op.Op.body)
            done;
            T.Tensor.set_flat out row !acc
          end
        done
      done;
      out

let estimate_seconds p =
  let cmd_s =
    float_of_int p.cmds_per_unit *. p.cfg.cycles_per_command /. p.cfg.freq_hz
  in
  let act_s =
    float_of_int p.row_activations *. p.cfg.row_activate_cycles /. p.cfg.freq_hz
  in
  let io_s = float_of_int p.bytes_io /. p.cfg.host_bw in
  p.cfg.mode_switch_s +. cmd_s +. act_s +. io_s

let commands_per_unit p = p.cmds_per_unit
let units_used p = p.punits
