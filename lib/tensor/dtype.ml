type t = I8 | I32 | F32

let equal a b =
  match (a, b) with
  | I8, I8 | I32, I32 | F32, F32 -> true
  | (I8 | I32 | F32), _ -> false

let to_string = function I8 -> "int8" | I32 -> "int32" | F32 -> "float32"
let pp ppf t = Format.pp_print_string ppf (to_string t)
let size_in_bytes = function I8 -> 1 | I32 -> 4 | F32 -> 4

let wrap_i32 n =
  (* Mask to 32 bits and sign-extend; a shift trick would overflow
     OCaml's 63-bit native ints for large operands. *)
  let m = n land 0xFFFFFFFF in
  if m >= 0x80000000 then m - 0x100000000 else m

let wrap_i8 n =
  let m = n land 0xFF in
  if m >= 0x80 then m - 0x100 else m

let round_f32 x = Int32.float_of_bits (Int32.bits_of_float x)

let int_of_f32 f =
  (* Pinned float->int conversion: NaN maps to 0, everything else
     truncates toward zero and saturates to the signed 32-bit range.
     OCaml's [int_of_float] is unspecified on NaN and out-of-range
     inputs, so the interpreter and the compiled executor both route
     through this helper to stay bit-identical. *)
  if Float.is_nan f then 0
  else if f >= 2147483647. then 2147483647
  else if f <= -2147483648. then -2147483648
  else int_of_float f
