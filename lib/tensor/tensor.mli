(** Dense, row-major tensors used as host-side golden data and as the
    backing store of the UPMEM simulator's memories. *)

type t

val create : Dtype.t -> Shape.t -> t
(** Zero-initialized tensor. *)

val init : Dtype.t -> Shape.t -> (int array -> Value.t) -> t
val scalar : Value.t -> t
(** Rank-1, single-element tensor holding one value. *)

val dtype : t -> Dtype.t
val shape : t -> Shape.t
val size : t -> int

val get : t -> int array -> Value.t
val set : t -> int array -> Value.t -> unit
val get_flat : t -> int -> Value.t
val set_flat : t -> int -> Value.t -> unit

val get_int_flat : t -> int -> int
(** Unboxed read of an integer tensor.
    @raise Invalid_argument on a float32 tensor. *)

val get_float_flat : t -> int -> float
(** Unboxed read as float; integer elements are converted. *)

val set_int_flat : t -> int -> int -> unit
(** Unboxed store with {!set_flat}'s conversion rules for an [Int]
    value (wrap on I8, float32 rounding on F32). *)

val set_float_flat : t -> int -> float -> unit
(** Unboxed store with {!set_flat}'s conversion rules for a [Float]
    value (pinned saturating truncation on integer dtypes, see
    {!Dtype.int_of_f32}). *)

val blit_flat : src:t -> src_off:int -> dst:t -> dst_off:int -> int -> unit
(** [blit_flat ~src ~src_off ~dst ~dst_off n] copies [n] flat elements
    with {!set_flat} conversion semantics; same-dtype pairs use
    [Array.blit].  The caller is responsible for bounds. *)

val copy : t -> t
val fill : t -> Value.t -> unit

val random : ?seed:int -> ?bound:int -> Dtype.t -> Shape.t -> t
(** Deterministic pseudo-random tensor.  Integer values are drawn
    uniformly from [[-bound, bound]] (default bound 100); floats from the
    same range scaled to [[-1, 1]]. *)

val equal : t -> t -> bool
(** Exact equality (shape, dtype and every element). *)

val close : ?rtol:float -> ?atol:float -> t -> t -> bool
(** Approximate elementwise equality, for float comparisons after
    reassociated reductions.  Defaults: rtol 1e-4, atol 1e-5. *)

val max_abs_diff : t -> t -> float
val to_value_list : t -> Value.t list
val pp : Format.formatter -> t -> unit
(** Prints shape, dtype and up to the first 16 elements. *)
