(** Element datatypes supported by the IMTP stack.

    UPMEM DPUs are 32-bit integer cores without an FPU; the PrIM
    benchmarks (and hence the paper's evaluation) use 32-bit integers,
    while float32 is supported through software emulation at a higher
    per-operation cost.  Both are modeled. *)

type t =
  | I8  (** 8-bit signed integer (wrap-around on store, C promotion
            semantics in arithmetic — as on the DPU). *)
  | I32  (** 32-bit signed integer (wrap-around semantics). *)
  | F32  (** IEEE-754 single precision (stored as OCaml floats, rounded). *)

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val size_in_bytes : t -> int
(** Storage footprint of one element: 1 for [I8], 4 otherwise. *)

val wrap_i32 : int -> int
(** [wrap_i32 n] reduces [n] to the signed 32-bit range, mirroring DPU
    integer arithmetic. *)

val wrap_i8 : int -> int
(** [wrap_i8 n] reduces [n] to the signed 8-bit range (applied on
    store, as C truncation does). *)

val round_f32 : float -> float
(** [round_f32 x] rounds a double to the nearest representable float32,
    so interpreter results match a true float32 machine. *)

val int_of_f32 : float -> int
(** Pinned float->integer conversion used by every [Cast] to an integer
    dtype and by implicit float->int stores: truncation toward zero,
    saturating to the signed 32-bit range, with NaN mapping to 0 (the
    behaviour of a saturating hardware convert such as AArch64
    [fcvtzs], which is also what the emitted C compiles to there).
    OCaml's own [int_of_float] is unspecified on NaN/out-of-range
    inputs; this helper makes the semantics deterministic so the
    interpreter and the compiled executor agree bit-for-bit. *)
