type data = I8_data of int array | I32_data of int array | F32_data of float array
type t = { shape : Shape.t; data : data }

let create dt shape =
  let n = Shape.size shape in
  let data =
    match dt with
    | Dtype.I8 -> I8_data (Array.make n 0)
    | Dtype.I32 -> I32_data (Array.make n 0)
    | Dtype.F32 -> F32_data (Array.make n 0.)
  in
  { shape; data }

let dtype t =
  match t.data with
  | I8_data _ -> Dtype.I8
  | I32_data _ -> Dtype.I32
  | F32_data _ -> Dtype.F32
let shape t = t.shape
let size t = Shape.size t.shape

let get_flat t off =
  match t.data with
  | I8_data a | I32_data a -> Value.Int a.(off)
  | F32_data a -> Value.Float a.(off)

let set_flat t off v =
  match (t.data, v) with
  | I8_data a, Value.Int n -> a.(off) <- Dtype.wrap_i8 n
  | I32_data a, Value.Int n -> a.(off) <- n
  | F32_data a, Value.Float f -> a.(off) <- f
  (* Implicit conversions: pinned saturating truncation toward zero
     (see Dtype.int_of_f32), float32 rounding toward int sources. *)
  | I8_data a, Value.Float f -> a.(off) <- Dtype.wrap_i8 (Dtype.int_of_f32 f)
  | I32_data a, Value.Float f -> a.(off) <- Dtype.int_of_f32 f
  | F32_data a, Value.Int n -> a.(off) <- Dtype.round_f32 (float_of_int n)

(* Unboxed flat accessors for the compiled executor's hot paths.  The
   setters follow [set_flat]'s conversion rules exactly; the getters
   assume the caller knows the tensor's dtype statically
   ([get_int_flat] rejects float tensors rather than guess). *)

let get_int_flat t off =
  match t.data with
  | I8_data a | I32_data a -> a.(off)
  | F32_data _ -> invalid_arg "Tensor.get_int_flat: float32 tensor"

let get_float_flat t off =
  match t.data with
  | F32_data a -> a.(off)
  | I8_data a | I32_data a -> float_of_int a.(off)

let set_int_flat t off n =
  match t.data with
  | I8_data a -> a.(off) <- Dtype.wrap_i8 n
  | I32_data a -> a.(off) <- n
  | F32_data a -> a.(off) <- Dtype.round_f32 (float_of_int n)

let set_float_flat t off f =
  match t.data with
  | I8_data a -> a.(off) <- Dtype.wrap_i8 (Dtype.int_of_f32 f)
  | I32_data a -> a.(off) <- Dtype.int_of_f32 f
  | F32_data a -> a.(off) <- f

(* Bulk flat copy with [set_flat] conversion semantics; same-dtype
   pairs take an [Array.blit] fast path.  Bounds must have been checked
   by the caller. *)
let blit_flat ~src ~src_off ~dst ~dst_off n =
  if n <= 0 then ()
  else
    match (src.data, dst.data) with
  | I8_data s, I8_data d | I32_data s, I32_data d ->
      Array.blit s src_off d dst_off n
  | F32_data s, F32_data d -> Array.blit s src_off d dst_off n
  | (I8_data _ | I32_data _ | F32_data _), _ ->
      for i = 0 to n - 1 do
        set_flat dst (dst_off + i) (get_flat src (src_off + i))
      done

let get t idx = get_flat t (Shape.linearize t.shape idx)
let set t idx v = set_flat t (Shape.linearize t.shape idx) v

let init dt shape f =
  let t = create dt shape in
  Shape.iter shape (fun idx -> set t idx (f idx));
  t

let scalar v =
  let t = create (Value.dtype v) (Shape.create [ 1 ]) in
  set_flat t 0 v;
  t

let copy t =
  let data =
    match t.data with
    | I8_data a -> I8_data (Array.copy a)
    | I32_data a -> I32_data (Array.copy a)
    | F32_data a -> F32_data (Array.copy a)
  in
  { t with data }

let fill t v =
  for off = 0 to size t - 1 do
    set_flat t off v
  done

let random ?(seed = 42) ?(bound = 100) dt shape =
  let st = Random.State.make [| seed; Shape.size shape |] in
  init dt shape (fun _ ->
      let n = Random.State.int st ((2 * bound) + 1) - bound in
      match dt with
      | Dtype.I8 -> Value.Int (Dtype.wrap_i8 n)
      | Dtype.I32 -> Value.Int n
      | Dtype.F32 ->
          Value.Float (Dtype.round_f32 (float_of_int n /. float_of_int bound)))

let equal a b =
  Shape.equal a.shape b.shape
  &&
  match (a.data, b.data) with
  | I8_data x, I8_data y | I32_data x, I32_data y -> x = y
  | F32_data x, F32_data y ->
      Array.for_all2 (fun u v -> Float.equal u v) x y
  | (I8_data _ | I32_data _ | F32_data _), _ -> false

let max_abs_diff a b =
  if not (Shape.equal a.shape b.shape) then infinity
  else begin
    let m = ref 0. in
    for off = 0 to size a - 1 do
      let d =
        Float.abs (Value.to_float (get_flat a off) -. Value.to_float (get_flat b off))
      in
      if d > !m then m := d
    done;
    !m
  end

let close ?(rtol = 1e-4) ?(atol = 1e-5) a b =
  Shape.equal a.shape b.shape
  && Dtype.equal (dtype a) (dtype b)
  &&
  (let ok = ref true in
   for off = 0 to size a - 1 do
     let x = Value.to_float (get_flat a off)
     and y = Value.to_float (get_flat b off) in
     if Float.abs (x -. y) > atol +. (rtol *. Float.abs y) then ok := false
   done;
   !ok)

let to_value_list t = List.init (size t) (get_flat t)

let pp ppf t =
  let n = min 16 (size t) in
  let elems = List.init n (fun i -> Value.to_string (get_flat t i)) in
  Format.fprintf ppf "tensor<%a,%a>[%s%s]" Shape.pp t.shape Dtype.pp (dtype t)
    (String.concat "; " elems)
    (if size t > n then "; ..." else "")
