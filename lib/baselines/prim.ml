module Op = Imtp_workload.Op
module Sk = Imtp_autotune.Sketch
module E = Imtp_tir.Expr
module St = Imtp_tir.Stmt
module B = Imtp_tir.Buffer
module V = Imtp_tir.Var
module P = Imtp_tir.Program
module U = Imtp_upmem

type params = {
  ndpus : int;
  tasklets : int;
  cache_bytes : int;
  host_threads : int;
}

let default = { ndpus = 2048; tasklets = 16; cache_bytes = 1024; host_threads = 1 }

(* Table 3 "PrIM/PrIM(E) # DPUs" row: the PrIM suite's shipped NR_DPUS
   defaults are workload-dependent. *)
let default_for (op : Imtp_workload.Op.t) =
  match op.Imtp_workload.Op.opname with
  | "va" | "geva" -> default
  | "red" -> { default with ndpus = 512 }
  | "mtv" | "gemv" -> { default with ndpus = 512 }
  | "ttv" -> { default with ndpus = 1024 }
  | "mmtv" -> { default with ndpus = 1024 }
  | _ -> default

(* PrIM is hand-optimized C: block DMA transfers, but no systematic
   loop-bound tightening or branch hoisting. *)
let prim_passes =
  { Imtp_passes.Pipeline.all_off with Imtp_passes.Pipeline.dma_elim = true }

let ceil_div a b = (a + b - 1) / b
let ei = E.int

(* --- dedicated RED builder: per-tasklet partials shipped to host ----- *)

let red_program (op : Op.t) p =
  let n = (List.hd op.Op.axes).Op.extent in
  let cache = max 2 (p.cache_bytes / 4) in
  let ndpus = max 1 (min p.ndpus n) in
  let t = p.tasklets in
  (* q: valid elements per DPU (host layout); the MRAM slice is padded
     to whole caching blocks, leaving trailing tasklets idle when the
     quota is smaller than t*cache — exactly PrIM's behaviour with its
     fixed 1,024 B blocks. *)
  let q = ceil_div n ndpus in
  let chunks = max 1 (ceil_div q (t * cache)) in
  let slice = chunks * t * cache in
  let a = B.create "A" op.Op.dtype ~elems:n B.Host in
  let c = B.create "C" op.Op.dtype ~elems:1 B.Host in
  let part = B.create "P_partial" op.Op.dtype ~elems:(ndpus * t) B.Host in
  let am = B.create "A_m" op.Op.dtype ~elems:slice B.Mram in
  let cm = B.create "C_m" op.Op.dtype ~elems:t B.Mram in
  let acc = B.create "acc_w" op.Op.dtype ~elems:1 B.Wram in
  let aw = B.create "A_w" op.Op.dtype ~elems:cache B.Wram in
  let blk = V.fresh "blk"
  and thr = V.fresh "thr"
  and ch = V.fresh "ch"
  and e1 = V.fresh "e"
  and e2 = V.fresh "e2" in
  let local ev chv =
    E.Binop
      ( E.Add,
        E.Binop
          ( E.Mul,
            E.Binop (E.Add, E.Binop (E.Mul, E.var thr, ei chunks), E.var chv),
            ei cache ),
        E.var ev )
  in
  let global ev chv = E.Binop (E.Add, E.Binop (E.Mul, E.var blk, ei q), local ev chv) in
  (* an element is valid if within this DPU's quota and the tensor. *)
  let valid ev chv =
    E.and_
      (E.Cmp (E.Lt, local ev chv, ei q))
      (E.Cmp (E.Lt, global ev chv, ei n))
  in
  let kernel_body =
    St.For
      {
        var = blk;
        extent = ei ndpus;
        kind = St.Bound St.Block_x;
        body =
          St.For
            {
              var = thr;
              extent = ei t;
              kind = St.Bound St.Thread_x;
              body =
                St.Alloc
                  {
                    buffer = acc;
                    body =
                      St.seq
                        [
                          St.store "acc_w" (ei 0) (ei 0);
                          St.For
                            {
                              var = ch;
                              extent = ei chunks;
                              kind = St.Serial;
                              body =
                                St.Alloc
                                  {
                                    buffer = aw;
                                    body =
                                      St.seq
                                        [
                                          St.for_ e1 (ei cache)
                                            (St.if_ (valid e1 ch)
                                               (St.Dma
                                                  {
                                                    dir = St.Mram_to_wram;
                                                    wram = "A_w";
                                                    wram_off = E.var e1;
                                                    mram = "A_m";
                                                    mram_off = local e1 ch;
                                                    elems = ei 1;
                                                  }));
                                          St.for_ e2 (ei cache)
                                            (St.if_ (valid e2 ch)
                                               (St.store "acc_w" (ei 0)
                                                  E.(
                                                    load "acc_w" (int 0)
                                                    + load "A_w" (var e2))));
                                        ];
                                  };
                            };
                          St.Dma
                            {
                              dir = St.Wram_to_mram;
                              wram = "acc_w";
                              wram_off = ei 0;
                              mram = "C_m";
                              mram_off = E.var thr;
                              elems = ei 1;
                            };
                        ];
                  };
            };
      }
  in
  let d = V.fresh "d" and d2 = V.fresh "d2" and fr = V.fresh "fr" in
  let host =
    St.seq
      [
        St.For
          {
            var = d;
            extent = ei ndpus;
            kind = St.Serial;
            body =
              St.if_
                E.(var d * int q < int n)
                (St.Xfer
                   {
                     dir = St.To_dpu;
                     mode = St.Push;
                     host = "A";
                     host_off = E.(var d * int q);
                     dpu = E.var d;
                     mram = "A_m";
                     mram_off = ei 0;
                     elems = E.min_e (ei q) E.(int n - (var d * int q));
                     group_dpus = ndpus;
                   });
          };
        St.Launch "prim_red";
        (* PrIM ships every tasklet's partial to the host. *)
        St.For
          {
            var = d2;
            extent = ei ndpus;
            kind = St.Serial;
            body =
              St.Xfer
                {
                  dir = St.From_dpu;
                  mode = St.Push;
                  host = "P_partial";
                  host_off = E.(var d2 * int t);
                  dpu = E.var d2;
                  mram = "C_m";
                  mram_off = ei 0;
                  elems = ei t;
                  group_dpus = ndpus;
                };
          };
        St.store "C" (ei 0) (ei 0);
        St.For
          {
            var = fr;
            extent = ei (ndpus * t);
            kind = St.Serial;
            body =
              St.store "C" (ei 0) E.(load "C" (int 0) + load "P_partial" (var fr));
          };
      ]
  in
  {
    P.name = "prim_red";
    host_buffers = [ a; c; part ];
    mram_buffers = [ am; cm ];
    kernels = [ { P.kname = "prim_red"; body = kernel_body } ];
    host;
  }

(* --- general mapping to the shared lowering -------------------------- *)

let sketch_params (op : Op.t) p =
  let cache_elems = max 2 (p.cache_bytes / 4) in
  let base =
    {
      Sk.default_params with
      Sk.spatial_dpus = p.ndpus;
      reduction_dpus = 1;
      tasklets = p.tasklets;
      cache_elems;
      host_threads = p.host_threads;
    }
  in
  match Sk.family_of op with
  | Sk.Elementwise | Sk.Mat_vec | Sk.Mat_mat | Sk.Grid_map -> base
  | Sk.Batched ->
      (* PrIM-style MMTV/TTV distribute DPUs across the flattened outer
         spatial dimensions. *)
      let batch = (List.nth op.Op.axes 0).Op.extent in
      let rows = (List.nth op.Op.axes 1).Op.extent in
      let per_batch = max 1 (p.ndpus / max 1 batch) in
      let rpt = max 1 (ceil_div rows (p.tasklets * per_batch)) in
      { base with Sk.rows_per_tasklet = rpt }
  | Sk.Tasklet_reduce -> base

let build ?skip_inputs cfg (op : Op.t) p =
  match Sk.family_of op with
  | Sk.Tasklet_reduce -> (
      let prog = red_program op p in
      let prog = Imtp_passes.Pipeline.run ~config:prim_passes cfg prog in
      match Imtp_autotune.Verifier.check cfg prog with
      | Error r -> Error ("verifier: " ^ r.Imtp_autotune.Verifier.reason)
      | Ok () -> Ok prog)
  | Sk.Elementwise | Sk.Mat_vec | Sk.Batched | Sk.Mat_mat | Sk.Grid_map ->
      Imtp_autotune.Measure.build ~passes:prim_passes ?skip_inputs cfg op
        (sketch_params op p)

let measure ?skip_inputs cfg op p =
  match build ?skip_inputs cfg op p with
  | Error m -> Error m
  | Ok prog -> (
      match Imtp_tir.Cost.measure cfg prog with
      | exception Imtp_tir.Cost.Error m -> Error m
      | stats -> Ok stats)

let default_dpu_grid (op : Op.t) =
  let lo = if op.Op.opname = "mmtv" then 5 else 8 in
  List.init (11 - lo + 1) (fun i -> 1 lsl (lo + i))

let grid_search ?dpu_choices ?tasklet_choices ?cache_choices cfg op =
  let dpus = Option.value dpu_choices ~default:(default_dpu_grid op) in
  let tasklets = Option.value tasklet_choices ~default:[ 8; 16; 24 ] in
  let caches = Option.value cache_choices ~default:[ 32; 64; 128; 256; 512; 1024; 2048 ] in
  let best = ref None in
  List.iter
    (fun ndpus ->
      List.iter
        (fun t ->
          List.iter
            (fun cb ->
              let p = { default with ndpus; tasklets = t; cache_bytes = cb } in
              match measure cfg op p with
              | Error _ -> ()
              | Ok stats -> (
                  let total = U.Stats.total_s stats in
                  match !best with
                  | Some (_, _, bt) when bt <= total -> ()
                  | Some _ | None -> best := Some (p, stats, total)))
            caches)
        tasklets)
    dpus;
  match !best with
  | Some (p, stats, _) -> Ok (p, stats)
  | None -> Error "no valid PrIM configuration"

let prim_e cfg op =
  grid_search
    ~tasklet_choices:[ default.tasklets ]
    ~cache_choices:[ default.cache_bytes ] cfg op
