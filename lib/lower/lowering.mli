(** Lowering of schedules to loop-based TIR programs (§5.2.2).

    Produces a {!Imtp_tir.Program.t} with:
    - one DPU kernel whose loop nest follows the schedule order (DPU
      bindings, tasklet binding, serial/unrolled loops, WRAM cache
      allocations with per-element guarded DMA loads/stores);
    - per-DPU address calculation baked into index expressions (MRAM
      tiles are locally padded — allocated in multiples of tile sizes —
      so local addresses are outer indices times tile strides plus
      inner indices);
    - host data-transfer loops, optionally coalesced (bulk transfer)
      and bank-parallel, and broadcast for DPU-invariant inputs;
    - hierarchical-reduction code when the schedule [rfactor]s a
      DPU-bound reduction segment: per-DPU partials gathered into a
      host buffer and a (optionally multi-threaded) host final
      reduction loop.

    The generated kernel is the {e unoptimized} form: cache movement is
    per-element guarded DMA.  The PIM-aware passes of {!Imtp_passes}
    then eliminate the boundary checks and vectorize the DMA — keeping
    the pipeline faithful to the paper, where those optimizations are
    separate TIR passes. *)

exception Lower_error of string

type options = {
  bulk_transfer : bool;
      (** coalesce contiguous transfer rows (Fig. 7(c)). *)
  parallel_transfer : bool;
      (** bank-parallel push/broadcast transfers (Fig. 7(d)); serial
          per-DPU copies otherwise. *)
  host_reduce_threads : int;
      (** threads for the host post-processing loop (Table 2
          "Post-processing"); 1 = sequential. *)
  skip_input_transfer : string list;
      (** inputs resident in MRAM across launches (§5.4 weight reuse):
          their H2D transfer is omitted. *)
  skip_output_transfer : bool;
      (** omit the device-to-host gather of the output: the graph
          compiler's MRAM-residency path, where the consumer kernel of
          the same combined program reads the producer's tile in place.
          Ignored for rfactor schedules (partials must reach the
          host). *)
  affine_guards : bool;
      (** boundary-check elimination at the source: partial-tile copy
          and host-transfer loops are clamped to the remaining axis
          span ([min (tile, n - base)]), WRAM boxes shrink to
          [min (cache_ext, axis_extent)], and each guard site consults
          the {!Imtp_tir.Affine} bound context, emitting only the
          checks it cannot prove redundant.  Off by default: the
          unclamped fully-guarded lowering is bit-identical to the
          pre-affine layer and remains the ablation baseline. *)
}

val default_options : options
(** bulk and parallel transfers on, single-threaded post-processing. *)

val lower : ?options:options -> Imtp_schedule.Sched.t -> Imtp_tir.Program.t
(** @raise Lower_error when the schedule is outside the supported
    structure: DPU-bound loops must form an outermost prefix (followed
    by the optional tasklet loop), each axis's DPU-bound segments must
    be its outermost segments, every tensor needs a placed cache, cache
    locations must dominate the segments they cover, and a DPU-bound
    reduction segment must be the [rfactor] loop.

    A [Sched.parallel] annotation on a trailing kernel loop is treated
    as a host post-processing hint (Table 2): the loop itself lowers to
    a serial per-tasklet loop, and its thread count raises the
    [host_reduce_threads] used for the hierarchical-reduction
    post-processing loop. *)

val partial_buffer_name : string
(** Name of the host buffer holding gathered per-DPU partials when
    hierarchical reduction is generated. *)

val output_buffer_elems : Imtp_schedule.Sched.t -> int
