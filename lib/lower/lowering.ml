module Op = Imtp_workload.Op
module S = Imtp_schedule.Sched
module E = Imtp_tir.Expr
module St = Imtp_tir.Stmt
module B = Imtp_tir.Buffer
module V = Imtp_tir.Var
module P = Imtp_tir.Program
module Simp = Imtp_tir.Simplify

exception Lower_error of string

let err fmt = Printf.ksprintf (fun m -> raise (Lower_error m)) fmt

type options = {
  bulk_transfer : bool;
  parallel_transfer : bool;
  host_reduce_threads : int;
  skip_input_transfer : string list;
  skip_output_transfer : bool;
      (* Omit the device-to-host gather of the output: the graph
         compiler's MRAM-residency path, where a consumer kernel in the
         same combined program reads the tile in place.  Ignored for
         rfactor schedules (partials must reach the host). *)
  affine_guards : bool;
      (* Boundary-check elimination at the source: clamp partial-tile
         loop extents and consult the affine bound context at every
         guard-emission site, emitting only the checks it cannot prove
         redundant.  Off by default: the unclamped, fully-guarded
         lowering below stays bit-identical for ablation. *)
}

let default_options =
  {
    bulk_transfer = true;
    parallel_transfer = true;
    host_reduce_threads = 1;
    skip_input_transfer = [];
    skip_output_transfer = false;
    affine_guards = false;
  }

let partial_buffer_name = "P_partial"

(* Expression shorthands (module-level operators would shadow Stdlib's). *)
let ei = E.int
let ( +: ) a b = E.Binop (E.Add, a, b)
let ( -: ) a b = E.Binop (E.Sub, a, b)
let ( *: ) a b = E.Binop (E.Mul, a, b)
let ( <: ) a b = E.Cmp (E.Lt, a, b)

let mram_name t = t ^ "_m"
let wram_name t = t ^ "_w"
let kernel_name = "main_kernel"

type ctx = {
  sched : S.t;
  op : Op.t;
  opts : options;
  kvars : (int, V.t) Hashtbl.t;
  hvars : (int, V.t) Hashtbl.t;
}

(* --- schedule queries ------------------------------------------------ *)

let pos ctx (l : S.loop) = S.loop_index ctx.sched l
let segs ctx axis = S.loops_of_axis ctx.sched axis
let axis_extent ctx a = (Op.axis ctx.op a).Op.extent
let misaligned ctx a = S.covered_extent ctx.sched a > axis_extent ctx a

let non_block_segs ctx axis =
  List.filter (fun l -> not (S.is_block l)) (segs ctx axis)

let mram_ext ctx axis =
  List.fold_left (fun acc (l : S.loop) -> acc * l.S.extent) 1 (non_block_segs ctx axis)

let deeper_segs ctx loc axis =
  List.filter (fun l -> pos ctx l > pos ctx loc) (segs ctx axis)

let cache_ext ctx loc axis =
  List.fold_left (fun acc (l : S.loop) -> acc * l.S.extent) 1 (deeper_segs ctx loc axis)

let kvar ctx (l : S.loop) = Hashtbl.find ctx.kvars l.S.lid
let hvar ctx (l : S.loop) = Hashtbl.find ctx.hvars l.S.lid

(* Σ var(l)·stride(l) over the given segments. *)
let seg_sum var_of segs =
  List.fold_left
    (fun acc (l : S.loop) -> acc +: (E.var (var_of l) *: ei l.S.stride))
    (ei 0) segs

(* Row-major strides for a dims list given per-dim extents. *)
let strides_of exts =
  let n = List.length exts in
  let arr = Array.of_list exts in
  let s = Array.make n 1 in
  for i = n - 2 downto 0 do
    s.(i) <- s.(i + 1) * arr.(i + 1)
  done;
  Array.to_list s

let tensor_dims ctx t =
  if String.equal t (fst ctx.op.Op.output) then snd ctx.op.Op.output
  else
    match List.assoc_opt t ctx.op.Op.inputs with
    | Some dims -> dims
    | None -> err "unknown tensor %s" t

let mram_tile_elems ctx t =
  List.fold_left (fun acc a -> acc * mram_ext ctx a) 1 (tensor_dims ctx t)

let host_elems ctx t =
  List.fold_left (fun acc a -> acc * axis_extent ctx a) 1 (tensor_dims ctx t)

let output_name ctx = fst ctx.op.Op.output

(* --- structural checks ------------------------------------------------ *)

let is_thread (l : S.loop) =
  match l.S.annot with
  | S.Bound S.Thread_x -> true
  | S.Bound _ | S.Serial | S.Unrolled | S.Host_parallel _ -> false

let thread_reduction ctx =
  match S.thread_loop ctx.sched with
  | Some l -> (Op.axis ctx.op l.S.axis).Op.kind = Op.Reduction
  | None -> false

let hierarchical ctx = S.rfactor_loop ctx.sched <> None

(* The epilogue runs inside the kernel (at the write-cache flush) unless
   the schedule is hierarchical — rfactor partials only become the full
   accumulated value on the host — or a tasklet-level reduction, whose
   combine step applies it instead. *)
let epi_in_kernel ctx =
  ctx.op.Op.epilogue <> None
  && (not (hierarchical ctx))
  && not (thread_reduction ctx)

let epi_wram_name t = t ^ "_we"

let cache_of ctx t =
  match
    List.find_opt (fun (c : S.cache) -> String.equal c.S.tensor t) (S.caches ctx.sched)
  with
  | Some c -> c
  | None -> err "tensor %s has no cache declaration" t

let cache_loc (c : S.cache) =
  match c.S.at with
  | Some l -> l
  | None -> err "cache for %s has no location (compute_at missing)" c.S.tensor

let check_structure ctx =
  let order = S.order ctx.sched in
  (* blocks prefix, then optional thread, then serial/unrolled. *)
  let rec check_prefix = function
    | l :: rest when S.is_block l -> check_prefix rest
    | rest -> rest
  in
  let after_blocks = check_prefix order in
  let after_thread =
    match after_blocks with l :: rest when is_thread l -> rest | rest -> rest
  in
  List.iter
    (fun (l : S.loop) ->
      match l.S.annot with
      | S.Serial | S.Unrolled | S.Host_parallel _ -> ()
      | S.Bound _ ->
          err "loop %s: bound loops must precede serial kernel loops" l.S.lname)
    after_thread;
  (* per axis: the non-block segments must jointly cover a contiguous
     [0, tile) range with unit granularity, so that per-DPU MRAM tiles
     are contiguous slices of the axis ("local padding", §5.3.1).
     Extent-1 segments contribute nothing and are ignored. *)
  let spans_unit segments =
    let live =
      List.sort
        (fun (x : S.loop) (y : S.loop) -> Int.compare x.S.stride y.S.stride)
        (List.filter (fun (l : S.loop) -> l.S.extent > 1) segments)
    in
    let rec go base = function
      | [] -> true
      | (l : S.loop) :: rest -> l.S.stride = base && go (base * l.S.extent) rest
    in
    go 1 live
  in
  List.iter
    (fun (a : Op.axis) ->
      if not (spans_unit (non_block_segs ctx a.Op.aname)) then
        err "axis %s: DPU-bound segments must be its outermost segments"
          a.Op.aname;
      (* On a reduction axis the block segment's stride must also meet
         the inner span exactly: overlapping per-DPU tiles would count
         interior elements twice, and the boundary guards only clamp
         the tail.  (Spatial overlap merely rewrites equal values.) *)
      if
        a.Op.kind = Op.Reduction
        && not (spans_unit (segs ctx a.Op.aname))
      then
        err "reduction axis %s: segments overlap; split factors must tile \
             the axis without double coverage"
          a.Op.aname)
    ctx.op.Op.axes;
  (* reduction-axis block segment must be the rfactor loop. *)
  let red_blocks =
    List.filter
      (fun (l : S.loop) -> (Op.axis ctx.op l.S.axis).Op.kind = Op.Reduction)
      (S.block_loops ctx.sched)
  in
  (match (red_blocks, S.rfactor_loop ctx.sched) with
  | [], None -> ()
  | [ l ], Some rf when l.S.lid = rf.S.lid -> ()
  | [ _ ], Some _ | [ _ ], None ->
      err "a DPU-bound reduction segment requires rfactor on that segment"
  | _ :: _ :: _, _ -> err "at most one DPU-bound reduction segment is supported"
  | [], Some _ -> err "rfactor loop must be DPU-bound");
  (* caches: all inputs read-cached, output write-cached, locations ok. *)
  let check_cache t rw =
    let c = cache_of ctx t in
    if c.S.rw <> rw then err "cache for %s has wrong direction" t;
    let loc = cache_loc c in
    if S.is_block loc then err "cache for %s placed at a DPU-bound loop" t;
    if is_thread loc && not (thread_reduction ctx) then
      err "cache for %s placed at the tasklet loop" t;
    (* segments covered by the cache must be each axis's innermost
       ones, i.e. they telescope contiguously from stride 1. *)
    List.iter
      (fun a ->
        if not (spans_unit (deeper_segs ctx loc a)) then
          err "cache for %s at %s: covered segments of axis %s are not innermost"
            t loc.S.lname a)
      (tensor_dims ctx t)
  in
  (* Only body-referenced inputs must be read-cached: epilogue-only
     inputs are staged by dedicated DMAs at the write-cache site, and
     unreferenced inputs never reach the kernel. *)
  List.iter (fun t -> check_cache t S.Read) (Op.body_refs ctx.op);
  check_cache (output_name ctx) S.Write;
  (* write cache must enclose all non-block reduction segments. *)
  let wc = cache_of ctx (output_name ctx) in
  let wloc = cache_loc wc in
  if not (thread_reduction ctx) then
    List.iter
      (fun (a : Op.axis) ->
        if a.Op.kind = Op.Reduction then
          List.iter
            (fun (l : S.loop) ->
              if pos ctx l <= pos ctx wloc then
                err
                  "write cache at %s does not enclose reduction segment %s"
                  wloc.S.lname l.S.lname)
            (non_block_segs ctx a.Op.aname))
      ctx.op.Op.axes
  else begin
    if Op.spatial_axes ctx.op <> [] then
      err "tasklet-level reduction requires an op with no spatial axes";
    match wc.S.at with
    | Some l when is_thread l -> ()
    | Some _ | None ->
        err "tasklet-level reduction requires the write cache at the tasklet loop"
  end

(* --- kernel emission --------------------------------------------------- *)

module Aff = Imtp_tir.Affine

(* Guard ordering: deepest-segment axis first (Fig. 8 lists the
   innermost boundary condition first). *)
let misaligned_axes ctx dims =
  let deepest a =
    List.fold_left (fun acc l -> max acc (pos ctx l)) (-1) (segs ctx a)
  in
  List.filter (misaligned ctx) dims
  |> List.sort (fun a b -> Int.compare (deepest b) (deepest a))

(* Cache-tile extent along [a], clamped to the axis under the affine
   lowering: a partial tile never holds more than the whole axis, so
   the WRAM box (buffer size, row strides, copy-loop extents) shrinks
   to [min (cache_ext, axis_extent)].  The clamp must be applied
   uniformly — [cache_dma], [wram_index] and [wram_buffer] derive the
   same layout from it. *)
let cache_dim ctx loc a =
  let ce = cache_ext ctx loc a in
  if ctx.opts.affine_guards then min ce (axis_extent ctx a) else ce

(* Affine context holding the ranges of every kernel loop enclosing
   [loc] (inclusive): the facts available at a guard-emission site. *)
let kernel_ctx ctx loc =
  List.fold_left
    (fun acc (l : S.loop) ->
      if pos ctx l <= pos ctx loc then
        Aff.assume_loop acc (kvar ctx l) (ei l.S.extent)
      else acc)
    Aff.empty (S.order ctx.sched)

(* Per-element guarded DMA between a cache tile and the MRAM tile.
   [wname] overrides the WRAM buffer name (epilogue staging tiles live
   beside any regular read cache of the same tensor). *)
let cache_dma ?wname ctx (dir : St.dma_dir) t loc =
  let wram_buf = match wname with Some w -> w | None -> wram_name t in
  let dims = tensor_dims ctx t in
  let cexts = List.map (cache_dim ctx loc) dims in
  let mexts = List.map (mram_ext ctx) dims in
  let rvars = List.map (fun a -> V.fresh ("c" ^ a)) dims in
  let wstrides = strides_of cexts and mstrides = strides_of mexts in
  let not_deeper a =
    List.filter (fun l -> pos ctx l <= pos ctx loc) (segs ctx a)
  in
  let fixed_local a =
    seg_sum (kvar ctx)
      (List.filter (fun l -> not (S.is_block l)) (not_deeper a))
  in
  let fixed_global a = seg_sum (kvar ctx) (not_deeper a) in
  let wram_off =
    List.fold_left2
      (fun acc rv ws -> acc +: (E.var rv *: ei ws))
      (ei 0) rvars wstrides
  in
  let mram_off =
    let terms = List.combine dims (List.combine rvars mstrides) in
    List.fold_left
      (fun acc (a, (rv, ms)) -> acc +: ((fixed_local a +: E.var rv) *: ei ms))
      (ei 0) terms
  in
  let guard_axes = misaligned_axes ctx dims in
  let rv_of a =
    let rec go ds rs =
      match (ds, rs) with
      | d :: _, r :: _ when String.equal d a -> r
      | _ :: ds', _ :: rs' -> go ds' rs'
      | _, _ -> assert false
    in
    go dims rvars
  in
  let guard =
    List.map (fun a -> fixed_global a +: E.var (rv_of a) <: ei (axis_extent ctx a)) guard_axes
  in
  (* Copy-loop extents.  Affine mode clamps each misaligned axis to the
     remaining span [axis_extent - fixed_global]: the loop then visits
     exactly the iterations the guard admitted, and the guard itself
     becomes provable from the loop range. *)
  let ext_exprs =
    List.map2
      (fun a ce ->
        if ctx.opts.affine_guards && misaligned ctx a then
          E.min_e (ei ce) (ei (axis_extent ctx a) -: fixed_global a)
        else ei ce)
      dims cexts
  in
  let guard =
    if ctx.opts.affine_guards then begin
      let actx =
        List.fold_left2
          (fun acc rv ext -> Aff.assume_loop acc rv ext)
          (kernel_ctx ctx loc) rvars ext_exprs
      in
      List.filter (fun g -> not (Aff.prove actx g)) guard
    end
    else guard
  in
  let dma =
    St.Dma
      {
        dir;
        wram = wram_buf;
        wram_off;
        mram = mram_name t;
        mram_off;
        elems = ei 1;
      }
  in
  let guarded =
    match guard with
    | [] -> dma
    | gs -> St.if_ (Imtp_tir.Analysis.conjoin gs) dma
  in
  List.fold_right2
    (fun rv ext body -> St.for_ rv ext body)
    rvars ext_exprs guarded

let wram_index ctx t =
  let c = cache_of ctx t in
  let loc = cache_loc c in
  let dims = tensor_dims ctx t in
  let cexts = List.map (cache_dim ctx loc) dims in
  let wstrides = strides_of cexts in
  List.fold_left2
    (fun acc a ws -> acc +: (seg_sum (kvar ctx) (deeper_segs ctx loc a) *: ei ws))
    (ei 0) dims wstrides

let bin_to_e = function
  | Op.Add -> E.Add
  | Op.Sub -> E.Sub
  | Op.Mul -> E.Mul
  | Op.Div -> E.Div
  | Op.Min -> E.Min
  | Op.Max -> E.Max

let const_expr v =
  match v with
  | Imtp_tensor.Value.Int n -> ei n
  | Imtp_tensor.Value.Float f -> E.float f

let rec elem_expr ctx (e : Op.elem) : E.t =
  match e with
  | Op.Const v -> const_expr v
  | Op.Acc -> err "Acc is only valid in an epilogue"
  | Op.Ref t -> E.load (wram_name t) (wram_index ctx t)
  | Op.Bin (op, a, b) ->
      let x = elem_expr ctx a and y = elem_expr ctx b in
      E.Binop (bin_to_e op, x, y)

(* Epilogue expression: [acc] is the fully accumulated output value at
   the current point; [ref_of] resolves an input reference to a load. *)
let rec epi_expr ~acc ~ref_of (e : Op.elem) : E.t =
  match e with
  | Op.Const v -> const_expr v
  | Op.Acc -> acc
  | Op.Ref t -> ref_of t
  | Op.Bin (op, a, b) ->
      E.Binop (bin_to_e op, epi_expr ~acc ~ref_of a, epi_expr ~acc ~ref_of b)

(* In-kernel epilogue: a loop nest over the write-cache tile applying
   the epilogue to each output element right before the tile is flushed
   to MRAM.  Guarded exactly like the flush DMA so padding elements of
   partial tiles are never touched (they may hold poison, and [Div]
   must not see a garbage denominator). *)
let epilogue_kernel_stmt ctx (e : Op.elem) (wloc : S.loop) =
  let out = output_name ctx in
  let out_dims = tensor_dims ctx out in
  let cexts = List.map (cache_dim ctx wloc) out_dims in
  let wstrides = strides_of cexts in
  let rvars = List.map (fun a -> V.fresh ("e" ^ a)) out_dims in
  let rv_of a =
    let rec go ds rs =
      match (ds, rs) with
      | d :: _, r :: _ when String.equal d a -> r
      | _ :: ds', _ :: rs' -> go ds' rs'
      | _, _ -> assert false
    in
    go out_dims rvars
  in
  let fixed_global a =
    seg_sum (kvar ctx)
      (List.filter (fun l -> pos ctx l <= pos ctx wloc) (segs ctx a))
  in
  let woff =
    List.fold_left2
      (fun acc a ws -> acc +: (E.var (rv_of a) *: ei ws))
      (ei 0) out_dims wstrides
  in
  let ref_of t =
    let tdims = tensor_dims ctx t in
    let tcexts = List.map (cache_dim ctx wloc) tdims in
    let tstrides = strides_of tcexts in
    let off =
      List.fold_left2
        (fun acc a ts -> acc +: (E.var (rv_of a) *: ei ts))
        (ei 0) tdims tstrides
    in
    E.load (epi_wram_name t) off
  in
  let acc = E.load (wram_name out) woff in
  let stored = St.store (wram_name out) woff (epi_expr ~acc ~ref_of e) in
  let guard_axes = misaligned_axes ctx out_dims in
  let guards =
    List.map
      (fun a -> fixed_global a +: E.var (rv_of a) <: ei (axis_extent ctx a))
      guard_axes
  in
  let ext_exprs =
    List.map2
      (fun a ce ->
        if ctx.opts.affine_guards && misaligned ctx a then
          E.min_e (ei ce) (ei (axis_extent ctx a) -: fixed_global a)
        else ei ce)
      out_dims cexts
  in
  let guards =
    if ctx.opts.affine_guards then begin
      let actx =
        List.fold_left2
          (fun acc rv ext -> Aff.assume_loop acc rv ext)
          (kernel_ctx ctx wloc) rvars ext_exprs
      in
      List.filter (fun g -> not (Aff.prove actx g)) guards
    end
    else guards
  in
  let guarded =
    match guards with
    | [] -> stored
    | gs -> St.if_ (Imtp_tir.Analysis.conjoin gs) stored
  in
  List.fold_right2
    (fun rv ext body -> St.for_ rv ext body)
    rvars ext_exprs guarded

let compute_stmt ctx =
  let out = output_name ctx in
  let wc = wram_name out in
  let widx = wram_index ctx out in
  let value = elem_expr ctx ctx.op.Op.body in
  let stored =
    if Op.has_reduction ctx.op then
      St.store wc widx (E.load wc widx +: value)
    else St.store wc widx value
  in
  let guards =
    List.map
      (fun a -> seg_sum (kvar ctx) (segs ctx a) <: ei (axis_extent ctx a))
      (misaligned_axes ctx (List.map (fun (a : Op.axis) -> a.Op.aname) ctx.op.Op.axes))
  in
  let guards =
    if ctx.opts.affine_guards then begin
      (* The full loop nest is in scope at the compute statement. *)
      let actx =
        List.fold_left
          (fun acc (l : S.loop) ->
            Aff.assume_loop acc (kvar ctx l) (ei l.S.extent))
          Aff.empty (S.order ctx.sched)
      in
      List.filter (fun g -> not (Aff.prove actx g)) guards
    end
    else guards
  in
  match guards with
  | [] -> stored
  | gs -> St.if_ (Imtp_tir.Analysis.conjoin gs) stored

let wram_buffer ?wname ctx t loc =
  let elems =
    List.fold_left (fun acc a -> acc * cache_dim ctx loc a) 1 (tensor_dims ctx t)
  in
  let name = match wname with Some w -> w | None -> wram_name t in
  B.create name ctx.op.Op.dtype ~elems:(max 1 elems) B.Wram

let init_write_cache ctx (buf : B.t) =
  if Op.has_reduction ctx.op then begin
    let v = V.fresh "z" in
    St.for_ v (ei buf.B.elems) (St.store buf.B.name (E.var v) (ei 0))
  end
  else St.Nop

(* Wrap [inner] with the caches located at loop [l]. *)
let wrap_caches ctx (l : S.loop) inner =
  let here =
    List.filter
      (fun (c : S.cache) ->
        match c.S.at with Some loc -> loc.S.lid = l.S.lid | None -> false)
      (S.caches ctx.sched)
  in
  let reads = List.filter (fun (c : S.cache) -> c.S.rw = S.Read) here in
  let writes = List.filter (fun (c : S.cache) -> c.S.rw = S.Write) here in
  (* Epilogue machinery attaches to the write-cache site: stage each
     epilogue-referenced input into its own WRAM tile, apply the
     epilogue in place, then let the regular flush DMA run. *)
  let epi =
    if epi_in_kernel ctx && writes <> [] then ctx.op.Op.epilogue else None
  in
  let epi_reads = match epi with Some _ -> Op.epilogue_refs ctx.op | None -> [] in
  let body =
    St.seq
      (List.map (fun (c : S.cache) -> cache_dma ctx St.Mram_to_wram c.S.tensor l) reads
      @ List.concat_map
          (fun (c : S.cache) ->
            [ init_write_cache ctx (wram_buffer ctx c.S.tensor l) ])
          writes
      @ List.map
          (fun t -> cache_dma ~wname:(epi_wram_name t) ctx St.Mram_to_wram t l)
          epi_reads
      @ [ inner ]
      @ (match epi with
        | Some e -> [ epilogue_kernel_stmt ctx e l ]
        | None -> [])
      @ List.map
          (fun (c : S.cache) -> cache_dma ctx St.Wram_to_mram c.S.tensor l)
          writes)
  in
  let body =
    List.fold_right
      (fun t acc ->
        St.Alloc { buffer = wram_buffer ~wname:(epi_wram_name t) ctx t l; body = acc })
      epi_reads body
  in
  List.fold_right
    (fun (c : S.cache) acc -> St.Alloc { buffer = wram_buffer ctx c.S.tensor l; body = acc })
    here body

let stmt_kind_of (l : S.loop) : St.loop_kind =
  match l.S.annot with
  | S.Serial -> St.Serial
  | S.Unrolled -> St.Unrolled
  (* [parallel] is a host post-processing hint (Table 2): inside the
     kernel the loop runs serially per tasklet; the thread count feeds
     the host final-reduction loop instead (see [host_par_threads]). *)
  | S.Host_parallel _ -> St.Serial
  | S.Bound S.Block_x -> St.Bound St.Block_x
  | S.Bound S.Block_y -> St.Bound St.Block_y
  | S.Bound S.Block_z -> St.Bound St.Block_z
  | S.Bound S.Thread_x -> St.Bound St.Thread_x

(* Tasklet-level parallel reduction (no spatial axes): each tasklet
   accumulates a private partial, stores it to a shared WRAM slot,
   tasklet 0 combines after a barrier and DMAs the single result out. *)
let emit_thread_reduction ctx (thr : S.loop) rest =
  let out = output_name ctx in
  let partials =
    B.create (out ^ "_partials") ctx.op.Op.dtype ~elems:thr.S.extent B.Wram
  in
  let wc_buf = B.create (wram_name out) ctx.op.Op.dtype ~elems:1 B.Wram in
  let rec emit_inner = function
    | [] -> compute_stmt ctx
    | (l : S.loop) :: ls ->
        let inner = emit_inner ls in
        let body = wrap_caches ctx l inner in
        St.For { var = kvar ctx l; extent = ei l.S.extent; kind = stmt_kind_of l; body }
  in
  (* Read caches placed at the thread loop itself: each tasklet stages
     its own MRAM slice before accumulating.  (The write cache at this
     loop is the hand-built partial slot above, not a generic cache.) *)
  let reads_at_thr =
    List.filter
      (fun (c : S.cache) ->
        c.S.rw = S.Read
        &&
        match c.S.at with
        | Some loc -> loc.S.lid = thr.S.lid
        | None -> false)
      (S.caches ctx.sched)
  in
  let with_reads body =
    List.fold_right
      (fun (c : S.cache) acc ->
        St.Alloc
          {
            buffer = wram_buffer ctx c.S.tensor thr;
            body =
              St.seq [ cache_dma ctx St.Mram_to_wram c.S.tensor thr; acc ];
          })
      reads_at_thr body
  in
  let per_tasklet =
    St.Alloc
      {
        buffer = wc_buf;
        body =
          St.seq
            [
              St.store wc_buf.B.name (ei 0) (ei 0);
              with_reads (emit_inner rest);
              St.store partials.B.name (E.var (kvar ctx thr))
                (E.load wc_buf.B.name (ei 0));
            ];
      }
  in
  let t = V.fresh "t" in
  (* Scalar epilogue (no spatial axes, so no input refs are possible):
     applied by tasklet 0 once the partials are combined.  Hierarchical
     schedules defer it to the host's final reduction instead. *)
  let epi_store =
    match ctx.op.Op.epilogue with
    | Some e when not (hierarchical ctx) ->
        [
          St.store partials.B.name (ei 0)
            (epi_expr
               ~acc:(E.load partials.B.name (ei 0))
               ~ref_of:(fun t -> err "epilogue input %s in a scalar reduction" t)
               e);
        ]
    | Some _ | None -> []
  in
  let combine =
    St.seq
      ([
         St.Barrier;
         St.for_ t
           (ei (thr.S.extent - 1))
           (St.store partials.B.name (ei 0)
              (E.load partials.B.name (ei 0)
              +: E.load partials.B.name (E.var t +: ei 1)));
       ]
      @ epi_store
      @ [
          St.Dma
          {
            dir = St.Wram_to_mram;
            wram = partials.B.name;
            wram_off = ei 0;
            mram = mram_name out;
            mram_off = ei 0;
            elems = ei 1;
          };
        ])
  in
  St.Alloc
    {
      buffer = partials;
      body =
        St.seq
          [
            St.For
              {
                var = kvar ctx thr;
                extent = ei thr.S.extent;
                kind = St.Bound St.Thread_x;
                body = per_tasklet;
              };
            combine;
          ];
    }

let emit_kernel ctx : P.kernel =
  let rec emit = function
    | [] -> compute_stmt ctx
    | (l : S.loop) :: rest ->
        if is_thread l && thread_reduction ctx then emit_thread_reduction ctx l rest
        else begin
          let inner = emit rest in
          let body = wrap_caches ctx l inner in
          St.For { var = kvar ctx l; extent = ei l.S.extent; kind = stmt_kind_of l; body }
        end
  in
  { P.kname = kernel_name; body = Simp.stmt (emit (S.order ctx.sched)) }

(* --- host transfers ---------------------------------------------------- *)

let block_loops ctx = S.block_loops ctx.sched

let dpu_expr ctx var_of =
  let blocks = block_loops ctx in
  let exts = List.map (fun (l : S.loop) -> l.S.extent) blocks in
  let strides = if blocks = [] then [] else strides_of exts in
  List.fold_left2
    (fun acc (l : S.loop) st -> acc +: (E.var (var_of l) *: ei st))
    (ei 0) blocks strides

let blockfix ctx var_of a =
  seg_sum var_of (List.filter S.is_block (segs ctx a))

(* Transfer of one tensor between host and MRAM tiles.  [into_partial]
   redirects the host side into the gathered-partials buffer. *)
let tensor_xfer ctx (dir : St.xfer_dir) t ~into_partial =
  let dims = tensor_dims ctx t in
  let mexts = List.map (mram_ext ctx) dims in
  let hexts = List.map (axis_extent ctx) dims in
  let mstrides = strides_of mexts and hstrides = strides_of hexts in
  let has_block =
    List.exists (fun a -> List.exists S.is_block (segs ctx a)) dims
  in
  let grid = S.grid_dpus ctx.sched in
  let mode : St.xfer_mode =
    if not ctx.opts.parallel_transfer then St.Copy
    else if has_block || into_partial then St.Push
    else if dir = St.From_dpu then St.Push
      (* broadcast only exists host-to-DPU; an unpartitioned tensor is
         replicated across the grid, so read it back from DPU 0. *)
    else St.Broadcast_x
  in
  (* Coalescing: with bulk transfer, merge the maximal fully-covered,
     aligned suffix of dims into the row; the row dim itself may be
     clamped.  Without bulk transfer, emit per-element transfers. *)
  let n = List.length dims in
  let full_aligned i =
    let a = List.nth dims i in
    (not (misaligned ctx a)) && mram_ext ctx a = axis_extent ctx a
  in
  let row_start =
    if not ctx.opts.bulk_transfer then n
    else if n = 0 then 0
    else begin
      (* smallest m such that all dims after m are fully covered. *)
      let m = ref (n - 1) in
      while !m > 0 && full_aligned !m do
        decr m
      done;
      !m
    end
  in
  (* Loop dims: indices < row_start get an explicit loop var. *)
  let loop_dims = List.filteri (fun i _ -> i < row_start) dims in
  let loop_mexts = List.filteri (fun i _ -> i < row_start) mexts in
  let rvars = List.map (fun a -> V.fresh ("t" ^ a)) loop_dims in
  let rv_of a =
    let rec go ds rs =
      match (ds, rs) with
      | d :: _, r :: _ when String.equal d a -> Some r
      | _ :: ds', _ :: rs' -> go ds' rs'
      | _, _ -> None
    in
    go loop_dims rvars
  in
  let idx_of a =
    let fix = blockfix ctx (hvar ctx) a in
    match rv_of a with Some rv -> fix +: E.var rv | None -> fix
  in
  let local_of a =
    match rv_of a with Some rv -> E.var rv | None -> ei 0
  in
  (* Row length: product of mram extents from row_start, clamped on the
     row dim when it is misaligned or partially covered. *)
  let suffix_prod l = List.fold_left ( * ) 1 (List.filteri (fun i _ -> i > l) mexts) in
  let elems, row_guard =
    if row_start >= n then (ei 1, [])
    else begin
      let a = List.nth dims row_start in
      let tail = suffix_prod row_start in
      let me = List.nth mexts row_start in
      if (not (misaligned ctx a)) && me = axis_extent ctx a then
        (ei (me * tail), [])
      else if not (misaligned ctx a) then (ei (me * tail), [])
      else begin
        let start = blockfix ctx (hvar ctx) a in
        ( E.min_e (ei me) (ei (axis_extent ctx a) -: start) *: ei tail,
          [ start <: ei (axis_extent ctx a) ] )
      end
    end
  in
  let host_off =
    if into_partial then
      let tile = mram_tile_elems ctx t in
      (dpu_expr ctx (hvar ctx) *: ei tile)
      +: List.fold_left2
           (fun acc a ms -> acc +: (local_of a *: ei ms))
           (ei 0) dims mstrides
    else
      List.fold_left2
        (fun acc a hs -> acc +: (idx_of a *: ei hs))
        (ei 0) dims hstrides
  in
  let mram_off =
    List.fold_left2
      (fun acc a ms -> acc +: (local_of a *: ei ms))
      (ei 0) dims mstrides
  in
  let host_buf = if into_partial then partial_buffer_name else t in
  let xfer =
    St.Xfer
      {
        dir;
        mode;
        host = host_buf;
        host_off;
        dpu =
          (match mode with
          | St.Broadcast_x -> ei 0
          | St.Copy | St.Push -> dpu_expr ctx (hvar ctx));
        mram = mram_name t;
        mram_off;
        elems;
        group_dpus = grid;
      }
  in
  (* Per-loop-dim validity guards (skip for partial gather: tiles are
     dense there). *)
  let guards =
    if into_partial then row_guard
    else
      row_guard
      @ List.filter_map
          (fun a ->
            if misaligned ctx a && rv_of a <> None then
              Some (idx_of a <: ei (axis_extent ctx a))
            else None)
          loop_dims
  in
  (* Affine mode: clamp each misaligned loop dim to the remaining span
     of its axis (partial gather keeps dense tiles, so is exempt), then
     drop every guard the block-loop and row-loop ranges prove. *)
  let loop_exts =
    List.map2
      (fun a me ->
        if ctx.opts.affine_guards && (not into_partial) && misaligned ctx a
        then
          E.min_e (ei me)
            (ei (axis_extent ctx a) -: blockfix ctx (hvar ctx) a)
        else ei me)
      loop_dims loop_mexts
  in
  let guards =
    if ctx.opts.affine_guards then begin
      let hctx =
        List.fold_left
          (fun acc (l : S.loop) ->
            Aff.assume_loop acc (hvar ctx l) (ei l.S.extent))
          Aff.empty (block_loops ctx)
      in
      let hctx =
        List.fold_left2
          (fun acc rv ext -> Aff.assume_loop acc rv ext)
          hctx rvars loop_exts
      in
      List.filter (fun g -> not (Aff.prove hctx g)) guards
    end
    else guards
  in
  let guarded =
    match guards with
    | [] -> xfer
    | gs -> St.if_ (Imtp_tir.Analysis.conjoin gs) xfer
  in
  let rows =
    List.fold_right2
      (fun rv ext body -> St.for_ rv ext body)
      rvars loop_exts guarded
  in
  (* Enclose in DPU loops (broadcast sends once for all DPUs). *)
  match mode with
  | St.Broadcast_x -> rows
  | St.Copy | St.Push ->
      List.fold_right
        (fun (l : S.loop) body -> St.for_ (hvar ctx l) (ei l.S.extent) body)
        (block_loops ctx) rows

(* --- host reduction ----------------------------------------------------- *)

(* Effective host post-processing parallelism: the lowering option, or
   any [Sched.parallel] annotation in the schedule, whichever is
   larger. *)
let host_par_threads ctx =
  List.fold_left
    (fun acc (l : S.loop) ->
      match l.S.annot with
      | S.Host_parallel n -> max acc n
      | S.Serial | S.Unrolled | S.Bound _ -> acc)
    ctx.opts.host_reduce_threads (S.order ctx.sched)

let final_reduction ctx =
  match S.rfactor_loop ctx.sched with
  | None -> St.Nop
  | Some rf ->
      let out = output_name ctx in
      let out_dims = snd ctx.op.Op.output in
      let mexts = List.map (mram_ext ctx) out_dims in
      let hexts = List.map (axis_extent ctx) out_dims in
      let mstrides = strides_of mexts and hstrides = strides_of hexts in
      let tile = mram_tile_elems ctx out in
      let qvars = List.map (fun a -> V.fresh ("q" ^ a)) out_dims in
      let spatial_blocks =
        List.filter (fun (l : S.loop) -> l.S.lid <> rf.S.lid) (block_loops ctx)
      in
      let idx_of a rv = blockfix ctx (hvar ctx) a +: E.var rv in
      let host_idx =
        List.fold_left2
          (fun acc (a, rv) hs -> acc +: (idx_of a rv *: ei hs))
          (ei 0)
          (List.combine out_dims qvars)
          hstrides
      in
      let local_idx =
        List.fold_left2
          (fun acc rv ms -> acc +: (E.var rv *: ei ms))
          (ei 0) qvars mstrides
      in
      let p_idx = (dpu_expr ctx (hvar ctx) *: ei tile) +: local_idx in
      (* Hierarchical epilogue: the host sees the full accumulated value
         only here, so apply it after the rfactor sum, reading epilogue
         inputs straight from their host buffers. *)
      let epi_store =
        match ctx.op.Op.epilogue with
        | None -> []
        | Some e ->
            let rv_of_dim a =
              let rec go ds qs =
                match (ds, qs) with
                | d :: _, q :: _ when String.equal d a -> q
                | _ :: ds', _ :: qs' -> go ds' qs'
                | _, _ -> err "epilogue input dim %s not an output dim" a
              in
              go out_dims qvars
            in
            let ref_of t =
              let tdims = tensor_dims ctx t in
              let thexts = List.map (axis_extent ctx) tdims in
              let tstrides = strides_of thexts in
              let off =
                List.fold_left2
                  (fun acc a hs -> acc +: (idx_of a (rv_of_dim a) *: ei hs))
                  (ei 0) tdims tstrides
              in
              E.load t off
            in
            [
              St.store out host_idx
                (epi_expr ~acc:(E.load out host_idx) ~ref_of e);
            ]
      in
      let body =
        St.seq
          ([
             St.store out host_idx (ei 0);
             St.For
               {
                 var = hvar ctx rf;
                 extent = ei rf.S.extent;
                 kind = St.Serial;
                 body =
                   St.store out host_idx
                     (E.load out host_idx +: E.load partial_buffer_name p_idx);
               };
           ]
          @ epi_store)
      in
      let guards =
        List.filter_map
          (fun (a, rv) ->
            if misaligned ctx a then Some (idx_of a rv <: ei (axis_extent ctx a))
            else None)
          (List.combine out_dims qvars)
      in
      (* Affine mode: clamp each misaligned tile loop to the remaining
         span of its axis and drop the guards that become provable. *)
      let qexts =
        List.map2
          (fun a me ->
            if ctx.opts.affine_guards && misaligned ctx a then
              E.min_e (ei me)
                (ei (axis_extent ctx a) -: blockfix ctx (hvar ctx) a)
            else ei me)
          out_dims mexts
      in
      let guards =
        if ctx.opts.affine_guards then begin
          let hctx =
            List.fold_left
              (fun acc (l : S.loop) ->
                Aff.assume_loop acc (hvar ctx l) (ei l.S.extent))
              Aff.empty (block_loops ctx)
          in
          let hctx =
            List.fold_left2
              (fun acc rv ext -> Aff.assume_loop acc rv ext)
              hctx qvars qexts
          in
          List.filter (fun g -> not (Aff.prove hctx g)) guards
        end
        else guards
      in
      let guarded =
        match guards with
        | [] -> body
        | gs -> St.if_ (Imtp_tir.Analysis.conjoin gs) body
      in
      let with_tiles =
        List.fold_right2
          (fun rv ext acc -> St.for_ rv ext acc)
          qvars qexts guarded
      in
      let rec with_blocks = function
        | [] -> with_tiles
        | (l : S.loop) :: rest ->
            St.For
              {
                var = hvar ctx l;
                extent = ei l.S.extent;
                kind = St.Serial;
                body = with_blocks rest;
              }
      in
      (* Parallelize the outermost spatial-block loop when requested. *)
      let stmt =
        match spatial_blocks with
        | [] -> with_tiles
        | first :: rest ->
            let threads = host_par_threads ctx in
            let kind =
              if threads > 1 then St.Host_parallel threads else St.Serial
            in
            St.For
              {
                var = hvar ctx first;
                extent = ei first.S.extent;
                kind;
                body = with_blocks rest;
              }
      in
      stmt

(* --- program assembly ---------------------------------------------------- *)

let output_buffer_elems sched =
  let op = S.op sched in
  max 1 (Op.output_elems op)

let lower ?(options = default_options) sched =
  let ctx =
    {
      sched;
      op = S.op sched;
      opts = options;
      kvars = Hashtbl.create 16;
      hvars = Hashtbl.create 16;
    }
  in
  List.iter
    (fun (l : S.loop) ->
      Hashtbl.replace ctx.kvars l.S.lid (V.fresh l.S.lname);
      Hashtbl.replace ctx.hvars l.S.lid (V.fresh ("h_" ^ l.S.lname)))
    (S.order sched);
  check_structure ctx;
  let out = output_name ctx in
  let kernel = emit_kernel ctx in
  let hierarchical = S.rfactor_loop sched <> None in
  let grid = S.grid_dpus sched in
  (* Inputs reach the DPUs when the schedule read-caches them (body
     inputs) or the in-kernel epilogue stages them; anything else stays
     a host-only buffer. *)
  let cached t =
    List.exists
      (fun (c : S.cache) -> c.S.rw = S.Read && String.equal c.S.tensor t)
      (S.caches sched)
  in
  let kernel_input t =
    cached t || (epi_in_kernel ctx && List.mem t (Op.epilogue_refs ctx.op))
  in
  let h2d =
    List.filter_map
      (fun (t, _) ->
        if (not (kernel_input t)) || List.mem t options.skip_input_transfer then
          None
        else Some (tensor_xfer ctx St.To_dpu t ~into_partial:false))
      ctx.op.Op.inputs
  in
  let d2h =
    if hierarchical then tensor_xfer ctx St.From_dpu out ~into_partial:true
    else if options.skip_output_transfer then St.Nop
    else tensor_xfer ctx St.From_dpu out ~into_partial:false
  in
  let host =
    St.seq (h2d @ [ St.Launch kernel_name; d2h; final_reduction ctx ])
  in
  let host_buffers =
    List.map
      (fun (t, _) -> B.create t ctx.op.Op.dtype ~elems:(host_elems ctx t) B.Host)
      ctx.op.Op.inputs
    @ [ B.create out ctx.op.Op.dtype ~elems:(output_buffer_elems sched) B.Host ]
    @
    if hierarchical then
      [
        B.create partial_buffer_name ctx.op.Op.dtype
          ~elems:(grid * mram_tile_elems ctx out)
          B.Host;
      ]
    else []
  in
  let mram_buffers =
    List.filter_map
      (fun (t, _) ->
        if not (kernel_input t) then None
        else
          Some
            (B.create (mram_name t) ctx.op.Op.dtype
               ~elems:(mram_tile_elems ctx t) B.Mram))
      ctx.op.Op.inputs
    @ [
        B.create (mram_name out) ctx.op.Op.dtype ~elems:(mram_tile_elems ctx out)
          B.Mram;
      ]
  in
  let prog =
    {
      P.name = ctx.op.Op.opname;
      host_buffers;
      mram_buffers;
      kernels = [ kernel ];
      host = Simp.stmt host;
    }
  in
  (match P.validate prog with
  | Ok () -> ()
  | Error m -> err "generated invalid program: %s" m);
  prog
