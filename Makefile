# Convenience targets; everything is driven by dune underneath.

FUZZ_SEED ?= $(shell date +%Y%m%d)
FUZZ_CASES ?= 10000
# Worker domains for parallel candidate evaluation.  Outcomes are
# determined by FUZZ_SEED alone — the same seed reproduces the same
# failures at any job count — so -j only changes wall-clock time.
JOBS ?= $(shell nproc 2>/dev/null || echo 1)
BENCH_DATE := $(shell date +%Y%m%d)

.PHONY: all test check doc bench bench-exec bench-model bench-affine \
	bench-serve bench-islands bench-graph serve-smoke fuzz clean

all:
	dune build @all

test:
	dune runtest

# Full gate: build, unit tests, a fixed-seed 50-case fuzz smoke at
# -j 2 through the engine path (the `@check` alias in test/dune,
# exercising the parallel campaign driver), the serving smoke (real
# daemon process, SIGKILL mid-tune, bit-identical resume), and the
# API docs (skipped gracefully when odoc is not installed).
check:
	dune build
	dune runtest
	dune build @check
	$(MAKE) doc

# Process-level serving smoke on its own: boots `imtp serve`, runs two
# concurrent client tunes, SIGKILLs the daemon mid-search and resumes
# in a fresh daemon, asserting the resumed history digest matches the
# uninterrupted run's.  Fixed seeds; also part of `dune build @check`.
serve-smoke:
	dune build @serve-smoke

# API documentation (odoc comments on every public .mli).  Gated on
# odoc being installed so `make check` works in minimal containers.
doc:
	@if command -v odoc >/dev/null 2>&1; then \
	  dune build @doc; \
	  echo "docs: _build/default/_doc/_html/index.html"; \
	else \
	  echo "doc: odoc not installed, skipping (opam install odoc)"; \
	fi

# Batch-throughput benchmark: cold-engine Engine.batch over 200
# distinct GEMM candidates at -j 1/2/4 plus the warm cache-hit path,
# interpreter-vs-compiled executor throughput on GEMV/MMTV, then the
# island-model search at -j4/-k4 vs -j1/-k1 (pure CPU and under
# emulated device latency).  All reports land in BENCH_<date>.json
# (and tables on stdout).
bench:
	dune exec bench/main.exe -- --batch-scaling --out BENCH_$(BENCH_DATE).json
	dune exec bench/main.exe -- --exec-throughput --out BENCH_$(BENCH_DATE).json
	dune exec bench/main.exe -- --island-scaling --out BENCH_$(BENCH_DATE).json
	dune exec bench/main.exe -- --graph --out BENCH_$(BENCH_DATE).json

# Whole-model graph pipeline: MLP forward pass and the attention block
# compiled fused + MRAM-resident vs per-op (fixed seeds, pinned island
# count), asserting the fused plan wins on modeled latency AND
# host-transfer volume, and recording both into BENCH_<date>.json.
bench-graph:
	dune exec bench/main.exe -- --graph --out BENCH_$(BENCH_DATE).json

# Island-model search scaling on its own: equal trial budgets at
# -j1/-k1 vs -j4/-k4, pure CPU and with IMTP_SIM_LATENCY_US emulating
# the per-measurement device round-trip, plus an Engine.batch leg
# under the same stall.
bench-islands:
	dune exec bench/main.exe -- --island-scaling --out BENCH_$(BENCH_DATE).json

# Just the executor-throughput comparison.
bench-exec:
	dune exec bench/main.exe -- --exec-throughput --out BENCH_$(BENCH_DATE).json

# Learned-cost-model gate: full vs gated search on the acceptance
# workloads (fixed seeds), recording best latency, simulator-execution
# counts and the reduction factor into BENCH_<date>.json.
bench-model:
	dune exec bench/main.exe -- --model-gating --out BENCH_$(BENCH_DATE).json

# Affine bound analysis: guarded vs containment-proven kernels on the
# ragged acceptance shapes (500x500 GEMV, 8x60x60 MMTV), recording
# branch counts, modeled kernel cost and verified-candidate counts
# under each pass stack into BENCH_<date>.json.
bench-affine:
	dune exec bench/main.exe -- --affine-bounds --out BENCH_$(BENCH_DATE).json

# Serving throughput: the same N fixed-seed tune sessions run
# back-to-back and as N concurrent clients against fresh daemons,
# recording aggregate trials/sec, the shared-cache ledger and the host
# core count (concurrency cannot beat the core budget) into
# BENCH_<date>.json.
bench-serve:
	dune exec bench/main.exe -- --serve-throughput --out BENCH_$(BENCH_DATE).json

# Long fuzzing campaign with a date-derived seed (override with
# FUZZ_SEED=n / FUZZ_CASES=n / JOBS=n).  The seed is printed first so
# a failing campaign can be reproduced exactly — with any JOBS value.
fuzz:
	@echo "fuzz seed: $(FUZZ_SEED)  cases: $(FUZZ_CASES)  jobs: $(JOBS)"
	dune exec bin/imtp_cli.exe -- fuzz --seed $(FUZZ_SEED) --cases $(FUZZ_CASES) --jobs $(JOBS)

clean:
	dune clean
