# Convenience targets; everything is driven by dune underneath.

FUZZ_SEED ?= $(shell date +%Y%m%d)
FUZZ_CASES ?= 10000

.PHONY: all test check fuzz clean

all:
	dune build @all

test:
	dune runtest

# Full gate: build, unit tests, and a fixed-seed 50-case fuzz smoke
# through the engine path (the `@check` alias in test/dune).
check:
	dune build
	dune runtest
	dune build @check

# Long fuzzing campaign with a date-derived seed (override with
# FUZZ_SEED=n / FUZZ_CASES=n).  The seed is printed first so a failing
# campaign can be reproduced exactly.
fuzz:
	@echo "fuzz seed: $(FUZZ_SEED)  cases: $(FUZZ_CASES)"
	dune exec bin/imtp_cli.exe -- fuzz --seed $(FUZZ_SEED) --cases $(FUZZ_CASES)

clean:
	dune clean
