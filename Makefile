# Convenience targets; everything is driven by dune underneath.

FUZZ_SEED ?= $(shell date +%Y%m%d)
FUZZ_CASES ?= 10000

.PHONY: all test check doc fuzz clean

all:
	dune build @all

test:
	dune runtest

# Full gate: build, unit tests, a fixed-seed 50-case fuzz smoke
# through the engine path (the `@check` alias in test/dune), and the
# API docs (skipped gracefully when odoc is not installed).
check:
	dune build
	dune runtest
	dune build @check
	$(MAKE) doc

# API documentation (odoc comments on every public .mli).  Gated on
# odoc being installed so `make check` works in minimal containers.
doc:
	@if command -v odoc >/dev/null 2>&1; then \
	  dune build @doc; \
	  echo "docs: _build/default/_doc/_html/index.html"; \
	else \
	  echo "doc: odoc not installed, skipping (opam install odoc)"; \
	fi

# Long fuzzing campaign with a date-derived seed (override with
# FUZZ_SEED=n / FUZZ_CASES=n).  The seed is printed first so a failing
# campaign can be reproduced exactly.
fuzz:
	@echo "fuzz seed: $(FUZZ_SEED)  cases: $(FUZZ_CASES)"
	dune exec bin/imtp_cli.exe -- fuzz --seed $(FUZZ_SEED) --cases $(FUZZ_CASES)

clean:
	dune clean
